#include "pipeline/rename_stage.hpp"

namespace reno
{

void
RenameStage::tick()
{
    renamer_.beginGroup();
    unsigned n = 0;
    while (n < params_.renameWidth && !s_.fetchBuf.empty()) {
        DynInst &d = *s_.fetchBuf.front();
        if (d.fetchReady > s_.now)
            break;
        const Instruction &inst = d.inst();
        const bool sys = inst.op == Opcode::SYSCALL;

        if (s_.rob.size() >= params_.robEntries) {
            ++stats_.stallRob;
            s_.renameStall = RenameStall::Rob;
            s_.renameStallCycle = s_.now;
            break;
        }
        if (sys && !s_.rob.empty())
            break;  // serialize
        if (!sys && s_.iqCount >= params_.iqEntries) {
            ++stats_.stallIq;
            s_.renameStall = RenameStall::Iq;
            s_.renameStallCycle = s_.now;
            break;
        }
        if (d.isLoadInst() && s_.lqCount >= params_.lqEntries) {
            ++stats_.stallLsq;
            s_.renameStall = RenameStall::Lsq;
            s_.renameStallCycle = s_.now;
            break;
        }
        if (d.isStoreInst() && s_.sqCount >= params_.sqEntries) {
            ++stats_.stallLsq;
            s_.renameStall = RenameStall::Lsq;
            s_.renameStallCycle = s_.now;
            break;
        }
        if (inst.hasDest() && !renamer_.ensureFreePreg()) {
            ++stats_.stallPregs;
            s_.renameStall = RenameStall::Pregs;
            s_.renameStallCycle = s_.now;
            break;
        }

        d.ren = renamer_.rename(RenameIn{inst, d.rec.result});
        d.renamed = true;
        d.renameCycle = s_.now;
        d.readyEarliest = s_.now + params_.renameDepth;

        if (sys) {
            d.completeCycle = d.readyEarliest;
            if (d.ren.hasDest) {
                s_.pregReady[d.ren.destPreg] = d.completeCycle;
                s_.pregIssue[d.ren.destPreg] = InvalidCycle;
                s_.pregProducer[d.ren.destPreg] = d.seq;
            }
        } else if (d.ren.eliminated()) {
            // Collapsed: no issue queue entry, no execution; the
            // instruction simply flows to retirement. Consumers track
            // the shared register's original producer.
            d.completeCycle = d.readyEarliest;
        } else {
            d.inIq = true;
            ++s_.iqCount;
            if (d.isLoadInst()) {
                d.inLq = true;
                ++s_.lqCount;
            }
            if (d.isStoreInst()) {
                d.inSq = true;
                ++s_.sqCount;
                d.storeSet = ssets_.storeDispatched(d.rec.pc, d.seq);
            }
            if (d.ren.hasDest) {
                s_.pregReady[d.ren.destPreg] = InvalidCycle;
                s_.pregIssue[d.ren.destPreg] = InvalidCycle;
                s_.pregProducer[d.ren.destPreg] = d.seq;
            }
            s_.issueListAppend(&d);
        }

        if (d.isLoadInst())
            s_.robLoads.push_back(&d);
        if (d.isStoreInst())
            s_.robStores.push_back(&d);
        s_.rob.push_back(s_.fetchBuf.front());
        s_.fetchBuf.pop_front();
        ++n;
        if (sys)
            break;
    }
}

} // namespace reno
