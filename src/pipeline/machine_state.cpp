#include "pipeline/machine_state.hpp"

#include <algorithm>

#include "reno/renamer.hpp"
#include "uarch/store_sets.hpp"

namespace reno
{

MachineState::MachineState(const CoreParams &params)
    : pregReady(params.numPregs, 0),
      pregIssue(params.numPregs, InvalidCycle),
      pregProducer(params.numPregs, 0)
{
}

void
MachineState::issueListAppend(DynInst *d)
{
    d->issuePrev = issueTail;
    d->issueNext = nullptr;
    d->inIssueList = true;
    if (issueTail)
        issueTail->issueNext = d;
    else
        issueHead = d;
    issueTail = d;
}

void
MachineState::issueListRemove(DynInst *d)
{
    if (d->issuePrev)
        d->issuePrev->issueNext = d->issueNext;
    else
        issueHead = d->issueNext;
    if (d->issueNext)
        d->issueNext->issuePrev = d->issuePrev;
    else
        issueTail = d->issuePrev;
    d->issuePrev = d->issueNext = nullptr;
    d->inIssueList = false;
}

std::size_t
MachineState::robIndexOf(InstSeq seq) const
{
    const auto it = std::lower_bound(
        rob.begin(), rob.end(), seq,
        [](const DynInst *d, InstSeq s) { return d->seq < s; });
    return static_cast<std::size_t>(it - rob.begin());
}

void
MachineState::squashFrom(std::size_t idx, Cycle restart_cycle,
                         RenoRenamer &renamer, StoreSets &ssets,
                         const CoreParams &params)
{
    // Roll back RENO state youngest-first. The squashed instructions
    // are the youngest suffix of every derived view, so the views
    // shrink from the back in lockstep.
    for (std::size_t j = rob.size(); j-- > idx;) {
        DynInst &d = *rob[j];
        renamer.rollback(d.inst(), d.ren);
        if (d.inIq)
            --iqCount;
        if (d.inLq)
            --lqCount;
        if (d.inSq) {
            --sqCount;
            ssets.storeInactive(d.storeSet, d.seq);
        }
        if (d.stallsFetch)
            --fetchBlocked;
        if (d.inIssueList)
            issueListRemove(&d);
        if (d.isStoreInst())
            robStores.pop_back();
        if (d.isLoadInst())
            robLoads.pop_back();
        d.resetForReplay();
        d.fetchCycle = restart_cycle;
        d.fetchReady = restart_cycle + params.frontDepth;
    }
    // Recycle into the fetch buffer, preserving program order.
    fetchBuf.insert(fetchBuf.begin(),
                    rob.begin() + static_cast<long>(idx), rob.end());
    rob.erase(rob.begin() + static_cast<long>(idx), rob.end());
    fetchWait = FetchWait::Squash;
}

} // namespace reno
