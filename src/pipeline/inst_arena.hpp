/**
 * @file
 * Recycling arena for dynamic instructions. The timing model used to
 * pay one heap allocation (and one free) per fetched instruction; the
 * arena hands out slots from slab allocations and recycles retired
 * instructions, so steady-state fetch -- and the squash/replay churn
 * of violation and misintegration recovery -- never touches the
 * allocator. Slots live as long as the arena; pointers handed out
 * stay valid across acquire/release cycles.
 */
#pragma once

#include <memory>
#include <vector>

#include "uarch/dyninst.hpp"

namespace reno
{

class InstArena
{
  public:
    /** Slots per slab; one slab covers a full ROB + fetch buffer for
     *  the paper's machines, so most runs allocate exactly twice. */
    static constexpr std::size_t SlabSize = 256;

    InstArena() = default;
    InstArena(const InstArena &) = delete;
    InstArena &operator=(const InstArena &) = delete;

    /**
     * Hand out an instruction slot with all rename/issue/retire state
     * cleared (resetForReplay semantics). The caller initializes the
     * identity and fetch-group fields.
     */
    DynInst *
    acquire()
    {
        if (free_.empty())
            grow();
        DynInst *d = free_.back();
        free_.pop_back();
        d->resetForReplay();
        return d;
    }

    /** Return a slot for reuse. The pointer must have come from
     *  acquire() and must no longer be referenced by the pipeline. */
    void
    release(DynInst *d)
    {
        free_.push_back(d);
    }

    std::size_t slabCount() const { return slabs_.size(); }
    std::size_t freeCount() const { return free_.size(); }

  private:
    void
    grow()
    {
        slabs_.push_back(std::make_unique<DynInst[]>(SlabSize));
        DynInst *base = slabs_.back().get();
        free_.reserve(free_.size() + SlabSize);
        for (std::size_t i = SlabSize; i-- > 0;)
            free_.push_back(base + i);
    }

    std::vector<std::unique_ptr<DynInst[]>> slabs_;
    std::vector<DynInst *> free_;
};

} // namespace reno
