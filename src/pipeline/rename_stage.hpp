/**
 * @file
 * Rename stage: moves fetched instructions into the ROB through the
 * RENO renamer, enforcing structural limits (ROB, issue queue,
 * load/store queues, free physical registers) and attributing every
 * stalled cycle to the resource that caused it. Collapsed
 * instructions bypass the issue queue entirely; syscalls serialize
 * the pipeline.
 */
#pragma once

#include "pipeline/machine_state.hpp"
#include "pipeline/pipeline_stats.hpp"
#include "reno/renamer.hpp"
#include "uarch/params.hpp"
#include "uarch/store_sets.hpp"

namespace reno
{

class RenameStage
{
  public:
    RenameStage(const CoreParams &params, RenoRenamer &renamer,
                StoreSets &ssets, MachineState &state,
                PipelineStats &stats)
        : params_(params), renamer_(renamer), ssets_(ssets), s_(state),
          stats_(stats)
    {
    }

    void tick();

  private:
    const CoreParams &params_;
    RenoRenamer &renamer_;
    StoreSets &ssets_;
    MachineState &s_;
    PipelineStats &stats_;
};

} // namespace reno
