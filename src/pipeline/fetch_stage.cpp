#include "pipeline/fetch_stage.hpp"

namespace reno
{

void
FetchStage::tick()
{
    if (s_.finished || s_.fetchBlocked > 0 || s_.now < s_.fetchResumeAt)
        return;

    const unsigned hit_lat = params_.mem.icache.latency;
    unsigned fetched = 0;
    unsigned taken_seen = 0;

    while (fetched < params_.fetchWidth &&
           s_.fetchBuf.size() < params_.fetchBufEntries &&
           !emu_.done()) {
        const Addr pc = emu_.state().pc;
        const Addr block = pc / params_.mem.icache.blockBytes;
        if (block != s_.lastFetchBlock) {
            const Cycle ready = mem_.fetchAccess(pc, s_.now);
            s_.lastFetchBlock = block;
            if (ready > s_.now + hit_lat) {
                // I$ miss: fetch resumes when the fill completes.
                s_.fetchResumeAt = ready - hit_lat;
                s_.fetchWait = FetchWait::Icache;
                break;
            }
        }

        const ExecRecord rec = emu_.step();
        DynInst *d = s_.arena.acquire();
        d->rec = rec;
        d->seq = s_.seqCounter++;
        d->fetchCycle = s_.now;
        d->fetchReady = s_.now + params_.frontDepth;
        d->redirectFrom = s_.pendingRedirectSeq;
        s_.pendingRedirectSeq = 0;

        bool mispredicted = false;
        if (isControl(rec.inst.op)) {
            const Prediction pred = bp_.predict(pc, rec.inst);
            Addr pred_npc = pc + 4;
            bool target_known = true;
            if (pred.taken) {
                pred_npc = pred.target;
                target_known = pred.targetValid;
            }
            if (pred.taken != rec.taken) {
                mispredicted = true;
                bp_.noteDirMispredict();
            } else if (rec.taken && (!target_known ||
                                     pred_npc != rec.npc)) {
                // Attribute the bad target to the component that
                // produced it: a wrong RAS pop (stack overflow
                // clobbered the frame, or a non-call/return pairing)
                // is a RAS mispredict; everything else is a
                // BTB/indirect-table target mispredict.
                mispredicted = true;
                if (pred.fromRas)
                    bp_.noteRasMispredict();
                else
                    bp_.noteTargetMispredict();
            }
            bp_.update(pc, rec.inst, rec.taken, rec.npc);
            if (rec.taken)
                ++taken_seen;
        }

        d->mispredicted = mispredicted;
        if (mispredicted) {
            d->stallsFetch = true;
            ++s_.fetchBlocked;
        }
        s_.fetchBuf.push_back(d);
        ++fetched;

        if (mispredicted)
            break;  // stall until the branch resolves
        if (taken_seen >= 2)
            break;  // can fetch past only one taken branch per cycle
    }
}

} // namespace reno
