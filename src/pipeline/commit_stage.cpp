#include "pipeline/commit_stage.hpp"

namespace reno
{

void
CommitStage::tick()
{
    // One retirement port: retired stores and re-executing integrated
    // loads drain from a post-retirement queue at one per cycle.
    // Retirement itself stalls only when that queue is full (sustained
    // demand above one per cycle -- the "vortex" effect, section 4.3).
    if (s_.drainQueue > 0)
        --s_.drainQueue;

    unsigned committed = 0;
    while (committed < params_.commitWidth && !s_.rob.empty()) {
        DynInst &d = *s_.rob.front();
        if (!d.renamed || !d.completed(s_.now))
            break;

        const bool elim_load =
            d.isLoadInst() && (d.ren.elim == ElimKind::Cse ||
                               d.ren.elim == ElimKind::Ra);

        // Stores write the cache at retirement; integrated loads
        // re-execute for verification. Both share one retirement port.
        if (d.isStoreInst() || elim_load) {
            if (s_.drainQueue >= params_.sqEntries) {
                d.commitDom = CommitDom::RetirePort;
                break;
            }
            ++s_.drainQueue;
            mem_.dataAccess(d.rec.effAddr, s_.now, d.isStoreInst());
        }

        if (elim_load && d.ren.misintegrated) {
            // Re-execution caught a stale integration: flush this load
            // and everything younger, refetch. The stale IT tuple was
            // already invalidated, so the replay renames normally.
            ++stats_.misintegrationFlushes;
            s_.squashFrom(0, s_.now + 1, renamer_, ssets_, params_);
            break;
        }

        d.retireCycle = s_.now;
        if (d.commitDom != CommitDom::RetirePort) {
            d.commitDom = d.completeCycle == s_.now
                ? CommitDom::SelfComplete : CommitDom::PrevCommit;
        }

        renamer_.retire(d.ren);
        if (d.inLq)
            --s_.lqCount;
        if (d.inSq) {
            --s_.sqCount;
            ssets_.storeInactive(d.storeSet, d.seq);
        }

        ++stats_.retired;
        ++stats_.retiredElim(d.ren.elim);
        if (d.isLoadInst())
            ++stats_.retiredLoads;
        if (d.isStoreInst())
            ++stats_.retiredStores;
        if (isControl(d.inst().op))
            ++stats_.retiredBranches;

        if (listener_)
            listener_->onRetire(d);

        const bool exited = d.rec.exited;
        if (d.isLoadInst())
            s_.robLoads.pop_front();
        if (d.isStoreInst())
            s_.robStores.pop_front();
        s_.rob.pop_front();
        s_.arena.release(&d);
        ++committed;
        if (exited) {
            s_.finished = true;
            break;
        }
    }
}

} // namespace reno
