#include "pipeline/commit_stage.hpp"

namespace reno
{

void
CommitStage::tick()
{
    // One retirement port: retired stores and re-executing integrated
    // loads drain from a post-retirement queue at one per cycle.
    // Retirement itself stalls only when that queue is full (sustained
    // demand above one per cycle -- the "vortex" effect, section 4.3).
    if (s_.drainQueue > 0)
        --s_.drainQueue;

    unsigned committed = 0;
    bool retire_port_stall = false;
    while (committed < params_.commitWidth && !s_.rob.empty()) {
        DynInst &d = *s_.rob.front();
        if (!d.renamed || !d.completed(s_.now))
            break;

        const bool elim_load =
            d.isLoadInst() && (d.ren.elim == ElimKind::Cse ||
                               d.ren.elim == ElimKind::Ra);

        // Stores write the cache at retirement; integrated loads
        // re-execute for verification. Both share one retirement port.
        if (d.isStoreInst() || elim_load) {
            if (s_.drainQueue >= params_.sqEntries) {
                d.commitDom = CommitDom::RetirePort;
                retire_port_stall = true;
                break;
            }
            ++s_.drainQueue;
            mem_.dataAccess(d.rec.effAddr, s_.now, d.isStoreInst());
        }

        if (elim_load && d.ren.misintegrated) {
            // Re-execution caught a stale integration: flush this load
            // and everything younger, refetch. The stale IT tuple was
            // already invalidated, so the replay renames normally.
            ++stats_.misintegrationFlushes;
            s_.squashFrom(0, s_.now + 1, renamer_, ssets_, params_);
            break;
        }

        d.retireCycle = s_.now;
        if (d.commitDom != CommitDom::RetirePort) {
            d.commitDom = d.completeCycle == s_.now
                ? CommitDom::SelfComplete : CommitDom::PrevCommit;
        }

        renamer_.retire(d.ren);
        if (d.inLq)
            --s_.lqCount;
        if (d.inSq) {
            --s_.sqCount;
            ssets_.storeInactive(d.storeSet, d.seq);
        }

        ++stats_.retired;
        ++stats_.retiredElim(d.ren.elim);
        if (d.isLoadInst())
            ++stats_.retiredLoads;
        if (d.isStoreInst())
            ++stats_.retiredStores;
        if (isControl(d.inst().op))
            ++stats_.retiredBranches;

        if (hot_)
            hot_->retire(d.rec.pc);
        if (listener_)
            listener_->onRetire(d);

        const bool exited = d.rec.exited;
        if (d.isLoadInst())
            s_.robLoads.pop_front();
        if (d.isStoreInst())
            s_.robStores.pop_front();
        s_.rob.pop_front();
        s_.arena.release(&d);
        ++committed;
        if (exited) {
            s_.finished = true;
            break;
        }
    }

    if (cpi_ || hot_)
        account(committed, retire_port_stall);
}

/**
 * One bucket per tick. Core::tick calls CommitStage::tick exactly once
 * per cycle, so the buckets sum to the cycle count by construction;
 * the tree below only decides WHICH bucket this cycle lands in.
 *
 * Priority (first match wins):
 *   committed > 0                      -> base
 *   retire-port back-pressure          -> drain (the "vortex")
 *   ROB head pending                   -> a backend bucket from the
 *                                         head's own state
 *   ROB empty                          -> a frontend bucket from the
 *                                         fetch-wait hint, else drain
 */
void
CommitStage::account(unsigned committed, bool retire_port_stall)
{
    using obs::CpiBucket;

    if (hot_ && committed == 0 && !s_.rob.empty())
        hot_->stall(s_.rob.front()->rec.pc);
    if (!cpi_)
        return;

    CpiBucket b = CpiBucket::Drain;
    if (committed > 0) {
        b = CpiBucket::Base;
    } else if (retire_port_stall) {
        b = CpiBucket::Drain;
    } else if (!s_.rob.empty()) {
        const DynInst &d = *s_.rob.front();
        if (d.issued) {
            // Executing: charge the head's own latency source.
            if (d.isLoadInst()) {
                if (d.cohDelayed)
                    b = CpiBucket::BackCoherence;
                else if (d.memLevel == MemHitLevel::Memory)
                    b = CpiBucket::BackDcacheMem;
                else if (d.memLevel == MemHitLevel::L2)
                    b = CpiBucket::BackDcacheL2;
                else
                    b = CpiBucket::BackDcacheL1;
            } else if (d.isStoreInst()) {
                b = CpiBucket::BackLsq;
            } else {
                b = CpiBucket::BackRob;
            }
        } else if (d.issueDom == IssueDom::MemDep) {
            // Store-set blocked load at the head.
            b = CpiBucket::BackLsq;
        } else if (s_.renameStall != RenameStall::None &&
                   s_.renameStallCycle != InvalidCycle &&
                   s_.renameStallCycle + 1 == s_.now) {
            // Rename reported a structural stall LAST cycle (rename
            // runs after commit within a tick): the machine is
            // resource-bound, not latency-bound.
            switch (s_.renameStall) {
              case RenameStall::Rob: b = CpiBucket::BackRob; break;
              case RenameStall::Iq: b = CpiBucket::BackIq; break;
              case RenameStall::Lsq: b = CpiBucket::BackLsq; break;
              case RenameStall::Pregs: b = CpiBucket::BackPregs; break;
              case RenameStall::None: break;
            }
        } else {
            // Head dispatched but not yet picked: scheduler latency.
            b = CpiBucket::BackIq;
        }
    } else if (s_.fetchBlocked > 0) {
        // Fetch is frozen behind an unresolved mispredicted branch.
        b = CpiBucket::FrontBpred;
    } else {
        switch (s_.fetchWait) {
          case FetchWait::Icache: b = CpiBucket::FrontIcache; break;
          case FetchWait::Redirect: b = CpiBucket::FrontBpred; break;
          case FetchWait::Squash:
          case FetchWait::None: b = CpiBucket::Drain; break;
        }
    }
    cpi_->inc(b);
}

} // namespace reno
