/**
 * @file
 * Fetch stage: pulls the correct-path dynamic instruction stream from
 * the functional emulator, charges I-cache latency per fetch block,
 * consults (and trains) the branch predictor, and stalls behind
 * unresolved mispredicted branches. Wrong-path contents are not
 * simulated; a misprediction blocks fetch until the branch resolves
 * (see uarch/core.hpp for the model discussion).
 */
#pragma once

#include "bpred/predictor.hpp"
#include "emu/emulator.hpp"
#include "mem/hierarchy.hpp"
#include "pipeline/machine_state.hpp"
#include "uarch/params.hpp"

namespace reno
{

class FetchStage
{
  public:
    FetchStage(const CoreParams &params, Emulator &emu,
               MemHierarchy &mem, BranchPredictor &bp,
               MachineState &state)
        : params_(params), emu_(emu), mem_(mem), bp_(bp), s_(state)
    {
    }

    void tick();

  private:
    const CoreParams &params_;
    Emulator &emu_;
    MemHierarchy &mem_;
    BranchPredictor &bp_;
    MachineState &s_;
};

} // namespace reno
