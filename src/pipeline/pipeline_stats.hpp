/**
 * @file
 * The timing pipeline's own counters, registered once against a
 * StatSet so every statistic has a stable name (snapshot/delta
 * algebra, named-stat reports) while the stages increment plain
 * std::uint64_t references on the hot path.
 *
 * Component statistics (integration table, branch predictor, caches)
 * stay inside their components; Core::result() combines both into a
 * SimResult.
 */
#pragma once

#include <cstdint>

#include "common/statset.hpp"
#include "reno/renamer.hpp"

namespace reno
{

struct PipelineStats {
    explicit PipelineStats(StatSet &set);

    std::uint64_t &retired;
    std::uint64_t &retiredLoads;
    std::uint64_t &retiredStores;
    std::uint64_t &retiredBranches;

    std::uint64_t &violationSquashes;
    std::uint64_t &misintegrationFlushes;

    std::uint64_t &stallRob;
    std::uint64_t &stallIq;
    std::uint64_t &stallPregs;
    std::uint64_t &stallLsq;

    /** Retired instructions collapsed, by ElimKind. */
    std::uint64_t &
    retiredElim(ElimKind kind) const
    {
        return *retiredElim_[static_cast<unsigned>(kind)];
    }

    std::uint64_t &
    retiredElim(unsigned kind) const
    {
        return *retiredElim_[kind];
    }

  private:
    std::uint64_t *retiredElim_[NumElimKinds];
};

} // namespace reno
