#include "pipeline/pipeline_stats.hpp"

namespace reno
{

PipelineStats::PipelineStats(StatSet &set)
    : retired(set.add("retired")),
      retiredLoads(set.add("retired_loads")),
      retiredStores(set.add("retired_stores")),
      retiredBranches(set.add("retired_branches")),
      violationSquashes(set.add("violation_squashes")),
      misintegrationFlushes(set.add("misintegration_flushes")),
      stallRob(set.add("stall_rob")),
      stallIq(set.add("stall_iq")),
      stallPregs(set.add("stall_pregs")),
      stallLsq(set.add("stall_lsq"))
{
    static const char *const ElimNames[NumElimKinds] = {
        "retired_elim_none", "retired_elim_me", "retired_elim_cf",
        "retired_elim_cse", "retired_elim_ra",
    };
    for (unsigned k = 0; k < NumElimKinds; ++k)
        retiredElim_[k] = &set.add(ElimNames[k]);
}

} // namespace reno
