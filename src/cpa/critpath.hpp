/**
 * @file
 * Critical-path analyzer in the style of Fields et al., as used by the
 * paper (section 4.3): the simulator records timing and dependence
 * data for all retired instructions; this analyzer builds the
 * dependence graph in 1M-instruction chunks, walks the last-arriving
 * edges backwards from the final commit, and accumulates each critical
 * edge's latency into one of five buckets:
 *
 *   fetch      - fetch bandwidth, I$ misses, branch mispredictions and
 *                finite-window stalls (all in-order front-end edges)
 *   alu exec   - integer dataflow latency
 *   load exec  - D$ / L2 dataflow latency (and store forwarding)
 *   load mem   - main-memory dataflow latency
 *   commit     - commit bandwidth and retirement-port contention
 */
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "uarch/dyninst.hpp"
#include "uarch/retire_listener.hpp"

namespace reno
{

/** Critical-path buckets (paper Figure 9). */
enum class CpBucket : unsigned {
    Fetch,
    AluExec,
    LoadExec,
    LoadMem,
    Commit,
    NumBuckets,
};

constexpr unsigned NumCpBuckets =
    static_cast<unsigned>(CpBucket::NumBuckets);

/** Human-readable bucket name. */
const char *cpBucketName(CpBucket bucket);

/** Collects retired-instruction records and computes the breakdown. */
class CriticalPathAnalyzer : public RetireListener
{
  public:
    /**
     * @param chunk_size  instructions per analysis chunk (the paper
     *                    uses 1M)
     * @param window      reorder-buffer size (ROB window edges)
     * @param iq_window   issue-queue size (IQ window edges)
     */
    explicit CriticalPathAnalyzer(size_t chunk_size = 1'000'000,
                                  unsigned window = 128,
                                  unsigned iq_window = 50);

    void onRetire(const DynInst &inst) override;

    /** Process any remaining partial chunk. */
    void finish();

    /** Total critical-path weight per bucket. */
    const std::array<std::uint64_t, NumCpBuckets> &
    buckets() const
    {
        return buckets_;
    }

    /** Normalized breakdown (fractions summing to ~1). */
    std::array<double, NumCpBuckets> breakdown() const;

    std::uint64_t totalWeight() const;

  private:
    /** Per-instruction node times and dominator info. */
    struct Record {
        InstSeq seq;
        Cycle f, i, e, c;  //!< rename, issue, complete, retire
        InstClass cls;
        MemHitLevel memLevel;
        bool eliminated;
        IssueDom issueDom;
        InstSeq domProducer;
        InstSeq redirectFrom;
        CommitDom commitDom;
    };

    CpBucket execBucket(const Record &rec) const;
    void processChunk();

    size_t chunkSize_;
    unsigned window_;
    unsigned iqWindow_;
    std::vector<Record> chunk_;
    InstSeq firstSeq_ = 0;
    std::array<std::uint64_t, NumCpBuckets> buckets_{};
};

} // namespace reno
