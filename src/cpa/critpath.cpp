#include "cpa/critpath.hpp"

#include "common/log.hpp"

namespace reno
{

const char *
cpBucketName(CpBucket bucket)
{
    switch (bucket) {
      case CpBucket::Fetch:    return "fetch";
      case CpBucket::AluExec:  return "alu_exec";
      case CpBucket::LoadExec: return "load_exec";
      case CpBucket::LoadMem:  return "load_mem";
      case CpBucket::Commit:   return "commit";
      default:                 return "?";
    }
}

CriticalPathAnalyzer::CriticalPathAnalyzer(size_t chunk_size,
                                           unsigned window,
                                           unsigned iq_window)
    : chunkSize_(chunk_size), window_(window), iqWindow_(iq_window)
{
    chunk_.reserve(chunk_size);
}

void
CriticalPathAnalyzer::onRetire(const DynInst &inst)
{
    Record rec;
    rec.seq = inst.seq;
    rec.f = inst.renameCycle;
    rec.e = inst.completeCycle;
    rec.c = inst.retireCycle;
    rec.i = inst.issued ? inst.issueCycle : rec.f;
    rec.cls = inst.inst().info().cls;
    rec.memLevel = inst.memLevel;
    rec.eliminated = inst.ren.eliminated();
    rec.issueDom = inst.issueDom;
    rec.domProducer = inst.domProducer;
    rec.redirectFrom = inst.redirectFrom;
    rec.commitDom = inst.commitDom;

    if (chunk_.empty())
        firstSeq_ = rec.seq;
    chunk_.push_back(rec);
    if (chunk_.size() >= chunkSize_)
        processChunk();
}

void
CriticalPathAnalyzer::finish()
{
    processChunk();
}

CpBucket
CriticalPathAnalyzer::execBucket(const Record &rec) const
{
    if (rec.cls == InstClass::Load) {
        if (rec.memLevel == MemHitLevel::Memory)
            return CpBucket::LoadMem;
        return CpBucket::LoadExec;
    }
    return CpBucket::AluExec;
}

void
CriticalPathAnalyzer::processChunk()
{
    if (chunk_.empty())
        return;

    enum class Node { F, I, E, C };

    auto add = [this](CpBucket bucket, Cycle from, Cycle to) {
        if (to > from)
            buckets_[static_cast<unsigned>(bucket)] += to - from;
    };
    auto index_of = [this](InstSeq seq) -> long {
        // Retirement is in program order and every fetched instruction
        // retires exactly once, so seqs within a chunk are contiguous.
        if (seq < firstSeq_ || seq >= firstSeq_ + chunk_.size())
            return -1;
        return static_cast<long>(seq - firstSeq_);
    };

    long idx = static_cast<long>(chunk_.size()) - 1;
    Node node = Node::C;
    bool walking = true;

    while (walking && idx >= 0) {
        const Record &rec = chunk_[static_cast<size_t>(idx)];
        switch (node) {
          case Node::C:
            if (rec.commitDom == CommitDom::SelfComplete || idx == 0) {
                add(CpBucket::Commit, rec.e, rec.c);
                node = Node::E;
            } else {
                const Record &prev = chunk_[static_cast<size_t>(idx - 1)];
                add(CpBucket::Commit, prev.c, rec.c);
                --idx;
            }
            break;
          case Node::E:
            if (rec.eliminated) {
                add(CpBucket::Fetch, rec.f, rec.e);
                node = Node::F;
            } else {
                add(execBucket(rec), rec.i, rec.e);
                node = Node::I;
            }
            break;
          case Node::I:
            switch (rec.issueDom) {
              case IssueDom::Dispatch:
                add(CpBucket::Fetch, rec.f, rec.i);
                node = Node::F;
                break;
              case IssueDom::Src0:
              case IssueDom::Src1:
              case IssueDom::MemDep: {
                const long pidx = index_of(rec.domProducer);
                if (pidx < 0) {
                    add(CpBucket::Fetch, rec.f, rec.i);
                    node = Node::F;
                } else {
                    const Record &prod =
                        chunk_[static_cast<size_t>(pidx)];
                    // Wait-for-producer edge: attribute the (small)
                    // scheduling gap to the consumer's class.
                    add(execBucket(rec), prod.e, rec.i);
                    idx = pidx;
                    node = Node::E;
                }
                break;
              }
              case IssueDom::Contention:
                add(execBucket(rec), rec.f, rec.i);
                node = Node::F;
                break;
            }
            break;
          case Node::F: {
            // Pick the last-arriving in-order constraint: the previous
            // fetch (bandwidth), the finite window (retirement of the
            // instruction ROB-size older), or a misprediction redirect
            // (the branch's execution). All edge weights land in the
            // paper's "fetch" bucket; the choice matters because the
            // walk continues from different nodes.
            const long widx = idx - static_cast<long>(window_);
            const long qidx = idx - static_cast<long>(iqWindow_);
            const Cycle prev_f =
                idx > 0 ? chunk_[static_cast<size_t>(idx - 1)].f : 0;
            Cycle window_t = 0;
            if (widx >= 0)
                window_t = chunk_[static_cast<size_t>(widx)].c;
            Cycle iq_t = 0;
            if (qidx >= 0)
                iq_t = chunk_[static_cast<size_t>(qidx)].i;
            Cycle redirect_t = 0;
            long bidx = -1;
            if (rec.redirectFrom) {
                bidx = index_of(rec.redirectFrom);
                if (bidx >= 0)
                    redirect_t = chunk_[static_cast<size_t>(bidx)].e;
            }
            // Only constraints that plausibly bound this rename time
            // are eligible (within the front-end refill distance).
            const bool win_ok = widx >= 0 && window_t + 4 >= rec.f &&
                                window_t >= prev_f;
            const bool iq_ok = qidx >= 0 && iq_t + 4 >= rec.f &&
                               iq_t >= prev_f;
            const bool red_ok = bidx >= 0 && redirect_t >= prev_f;
            if (red_ok && redirect_t >= window_t && redirect_t >= iq_t) {
                add(CpBucket::Fetch, redirect_t, rec.f);
                idx = bidx;
                node = Node::E;
            } else if (win_ok && window_t >= iq_t) {
                add(CpBucket::Fetch, window_t, rec.f);
                idx = widx;
                node = Node::C;
            } else if (iq_ok) {
                add(CpBucket::Fetch, iq_t, rec.f);
                idx = qidx;
                node = Node::I;
            } else if (idx == 0) {
                walking = false;
            } else {
                add(CpBucket::Fetch, prev_f, rec.f);
                --idx;
            }
            break;
          }
        }
    }

    chunk_.clear();
}

std::uint64_t
CriticalPathAnalyzer::totalWeight() const
{
    std::uint64_t sum = 0;
    for (const auto w : buckets_)
        sum += w;
    return sum;
}

std::array<double, NumCpBuckets>
CriticalPathAnalyzer::breakdown() const
{
    std::array<double, NumCpBuckets> out{};
    const double total = static_cast<double>(totalWeight());
    if (total > 0) {
        for (unsigned b = 0; b < NumCpBuckets; ++b)
            out[b] = static_cast<double>(buckets_[b]) / total;
    }
    return out;
}

} // namespace reno
