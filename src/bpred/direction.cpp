#include "bpred/direction.hpp"

#include <cmath>

#include "common/log.hpp"

namespace reno
{

const char *
dirPredKindName(DirPredKind kind)
{
    switch (kind) {
      case DirPredKind::Bimodal:    return "bimodal";
      case DirPredKind::GShare:     return "gshare";
      case DirPredKind::Tournament: return "tournament";
      case DirPredKind::Tage:       return "tage";
      case DirPredKind::Perceptron: return "perceptron";
    }
    panic("bad DirPredKind %u", static_cast<unsigned>(kind));
}

namespace
{

void
requirePow2(const char *engine, const char *what, unsigned v)
{
    if (v == 0 || (v & (v - 1)) != 0)
        fatal("%s predictor: %s must be a non-zero power of two "
              "(got %u)", engine, what, v);
}

void
bump2(std::uint8_t &counter, bool up)
{
    if (up && counter < 3)
        ++counter;
    else if (!up && counter > 0)
        --counter;
}

/** Fold the low @p len bits of @p hist into @p bits bits by xor. */
std::uint64_t
fold(std::uint64_t hist, unsigned len, unsigned bits)
{
    if (bits == 0)
        return 0;
    const std::uint64_t h =
        len >= 64 ? hist : hist & ((std::uint64_t{1} << len) - 1);
    std::uint64_t f = 0;
    for (unsigned i = 0; i < len; i += bits)
        f ^= h >> i;
    return f & ((std::uint64_t{1} << bits) - 1);
}

std::vector<std::uint64_t>
packU8(const std::vector<std::uint8_t> &v)
{
    return {v.begin(), v.end()};
}

bool
unpackU8(const std::vector<std::uint64_t> &in, std::uint64_t limit,
         std::vector<std::uint8_t> *out)
{
    if (in.size() != out->size())
        return false;
    for (std::size_t i = 0; i < in.size(); ++i) {
        if (in[i] > limit)
            return false;
        (*out)[i] = static_cast<std::uint8_t>(in[i]);
    }
    return true;
}

// ---------------------------------------------------------------------------
// Bimodal: per-PC 2-bit counters, no history.
// ---------------------------------------------------------------------------

class BimodalPredictor final : public DirectionPredictor
{
  public:
    explicit BimodalPredictor(const DirPredParams &params)
        : params_(params), table_(params.bimodalEntries, 1)
    {
        requirePow2("bimodal", "table size", params.bimodalEntries);
    }

    bool
    predict(Addr pc) override
    {
        return table_[index(pc)] >= 2;
    }

    void
    train(Addr pc, bool taken) override
    {
        bump2(table_[index(pc)], taken);
    }

    DirPredState
    exportState() const override
    {
        DirPredState s;
        s.tables = {packU8(table_)};
        return s;
    }

    bool
    importState(const DirPredState &s) override
    {
        return s.tables.size() == 1 &&
               unpackU8(s.tables[0], 3, &table_);
    }

    std::unique_ptr<DirectionPredictor>
    clone() const override
    {
        return std::make_unique<BimodalPredictor>(*this);
    }

    DirPredKind kind() const override { return DirPredKind::Bimodal; }

  private:
    unsigned
    index(Addr pc) const
    {
        return static_cast<unsigned>((pc >> 2) %
                                     params_.bimodalEntries);
    }

    DirPredParams params_;
    std::vector<std::uint8_t> table_;
};

// ---------------------------------------------------------------------------
// GShare: 2-bit counters indexed by PC xor global history.
// ---------------------------------------------------------------------------

class GSharePredictor final : public DirectionPredictor
{
  public:
    explicit GSharePredictor(const DirPredParams &params)
        : params_(params), table_(params.gshareEntries, 1)
    {
        requirePow2("gshare", "table size", params.gshareEntries);
        if (params.historyBits == 0 || params.historyBits > 63)
            fatal("gshare predictor: historyBits must be in [1, 63] "
                  "(got %u)", params.historyBits);
    }

    bool
    predict(Addr pc) override
    {
        return table_[index(pc)] >= 2;
    }

    void
    train(Addr pc, bool taken) override
    {
        bump2(table_[index(pc)], taken);
        history_ = (history_ << 1) | (taken ? 1 : 0);
    }

    DirPredState
    exportState() const override
    {
        DirPredState s;
        s.history = history_;
        s.tables = {packU8(table_)};
        return s;
    }

    bool
    importState(const DirPredState &s) override
    {
        if (s.tables.size() != 1 ||
            !unpackU8(s.tables[0], 3, &table_))
            return false;
        history_ = s.history;
        return true;
    }

    std::unique_ptr<DirectionPredictor>
    clone() const override
    {
        return std::make_unique<GSharePredictor>(*this);
    }

    DirPredKind kind() const override { return DirPredKind::GShare; }

  private:
    unsigned
    index(Addr pc) const
    {
        const std::uint64_t hist =
            history_ &
            ((std::uint64_t{1} << params_.historyBits) - 1);
        return static_cast<unsigned>(((pc >> 2) ^ hist) %
                                     params_.gshareEntries);
    }

    DirPredParams params_;
    std::vector<std::uint8_t> table_;
    std::uint64_t history_ = 0;
};

// ---------------------------------------------------------------------------
// Tournament: bimodal + gshare with a per-PC chooser. The default
// engine; bit-for-bit the behavior of the seed's hardwired hybrid
// (same initialization, indexing and update order), which the paper-
// geometry bench goldens depend on.
// ---------------------------------------------------------------------------

class TournamentPredictor final : public DirectionPredictor
{
  public:
    explicit TournamentPredictor(const DirPredParams &params)
        : params_(params),
          bimodal_(params.bimodalEntries, 1),
          gshare_(params.gshareEntries, 1),
          chooser_(params.chooserEntries, 2)
    {
        requirePow2("tournament", "bimodal table size",
                    params.bimodalEntries);
        requirePow2("tournament", "gshare table size",
                    params.gshareEntries);
        requirePow2("tournament", "chooser table size",
                    params.chooserEntries);
        if (params.historyBits == 0 || params.historyBits > 63)
            fatal("tournament predictor: historyBits must be in "
                  "[1, 63] (got %u)", params.historyBits);
    }

    bool
    predict(Addr pc) override
    {
        const bool use_gshare = chooser_[chooserIndex(pc)] >= 2;
        const std::uint8_t counter = use_gshare
                                         ? gshare_[gshareIndex(pc)]
                                         : bimodal_[bimodalIndex(pc)];
        return counter >= 2;
    }

    void
    train(Addr pc, bool taken) override
    {
        const bool bim_correct =
            (bimodal_[bimodalIndex(pc)] >= 2) == taken;
        const bool gsh_correct =
            (gshare_[gshareIndex(pc)] >= 2) == taken;
        if (bim_correct != gsh_correct)
            bump2(chooser_[chooserIndex(pc)], gsh_correct);
        bump2(bimodal_[bimodalIndex(pc)], taken);
        bump2(gshare_[gshareIndex(pc)], taken);
        history_ = (history_ << 1) | (taken ? 1 : 0);
    }

    DirPredState
    exportState() const override
    {
        DirPredState s;
        s.history = history_;
        s.tables = {packU8(bimodal_), packU8(gshare_),
                    packU8(chooser_)};
        return s;
    }

    bool
    importState(const DirPredState &s) override
    {
        if (s.tables.size() != 3 ||
            !unpackU8(s.tables[0], 3, &bimodal_) ||
            !unpackU8(s.tables[1], 3, &gshare_) ||
            !unpackU8(s.tables[2], 3, &chooser_))
            return false;
        history_ = s.history;
        return true;
    }

    std::unique_ptr<DirectionPredictor>
    clone() const override
    {
        return std::make_unique<TournamentPredictor>(*this);
    }

    DirPredKind kind() const override
    {
        return DirPredKind::Tournament;
    }

  private:
    unsigned
    bimodalIndex(Addr pc) const
    {
        return static_cast<unsigned>((pc >> 2) %
                                     params_.bimodalEntries);
    }

    unsigned
    gshareIndex(Addr pc) const
    {
        const std::uint64_t hist =
            history_ &
            ((std::uint64_t{1} << params_.historyBits) - 1);
        return static_cast<unsigned>(((pc >> 2) ^ hist) %
                                     params_.gshareEntries);
    }

    unsigned
    chooserIndex(Addr pc) const
    {
        return static_cast<unsigned>((pc >> 2) %
                                     params_.chooserEntries);
    }

    DirPredParams params_;
    std::vector<std::uint8_t> bimodal_;
    std::vector<std::uint8_t> gshare_;
    std::vector<std::uint8_t> chooser_;
    std::uint64_t history_ = 0;
};

// ---------------------------------------------------------------------------
// TAGE-lite: bimodal base + tagged tables with geometric histories.
// Longest tag match provides the prediction; 3-bit counters, 2-bit
// useful bits, allocate-on-mispredict into a longer table.
// ---------------------------------------------------------------------------

class TagePredictor final : public DirectionPredictor
{
  public:
    explicit TagePredictor(const DirPredParams &params)
        : params_(params), base_(params.tageBaseEntries, 1)
    {
        requirePow2("tage", "base table size", params.tageBaseEntries);
        requirePow2("tage", "tagged table size", params.tageEntries);
        if (params.tageEntries < 2)
            fatal("tage predictor: tagged table size must be at "
                  "least 2 (got %u)", params.tageEntries);
        if (params.tageTables == 0)
            fatal("tage predictor: needs at least one tagged table");
        if (params.tageTagBits < 4 || params.tageTagBits > 15)
            fatal("tage predictor: tag width must be in [4, 15] bits "
                  "(got %u)", params.tageTagBits);
        if (params.tageMinHist == 0 ||
            params.tageMaxHist < params.tageMinHist ||
            params.tageMaxHist > 64)
            fatal("tage predictor: history range must satisfy "
                  "1 <= min <= max <= 64 (got [%u, %u])",
                  params.tageMinHist, params.tageMaxHist);

        // Geometric history lengths: L_0 = min, L_{T-1} = max,
        // intermediate lengths on the geometric interpolation,
        // strictly increasing.
        const unsigned n = params.tageTables;
        histLen_.resize(n);
        for (unsigned i = 0; i < n; ++i) {
            double len = params.tageMinHist;
            if (n > 1)
                len = params.tageMinHist *
                      std::pow(double(params.tageMaxHist) /
                                   params.tageMinHist,
                               double(i) / (n - 1));
            histLen_[i] = static_cast<unsigned>(std::lround(len));
            if (i > 0 && histLen_[i] <= histLen_[i - 1])
                histLen_[i] = histLen_[i - 1] + 1;
            if (histLen_[i] > 64)
                histLen_[i] = 64;
        }
        idxBits_ = 0;
        while ((1u << idxBits_) < params.tageEntries)
            ++idxBits_;
        tables_.assign(n, Table{
            std::vector<std::uint16_t>(params.tageEntries,
                                       InvalidTag),
            std::vector<std::uint8_t>(params.tageEntries, 0),
            std::vector<std::uint8_t>(params.tageEntries, 0)});
    }

    bool
    predict(Addr pc) override
    {
        const int provider = findProvider(pc);
        // The core and functional warming always train right after
        // predicting (the history cannot advance in between), so
        // park the provider for train() to reuse.
        memoPc_ = pc;
        memoProvider_ = provider;
        memoValid_ = true;
        if (provider >= 0) {
            ++providerHits_;
            return tables_[provider]
                       .ctr[indexOf(pc, provider)] >= 4;
        }
        ++altHits_;
        return base_[baseIndex(pc)] >= 2;
    }

    void
    train(Addr pc, bool taken) override
    {
        // The provider predict() found is still valid (the history
        // has not advanced); recompute only on an unpaired train.
        const int provider = memoValid_ && memoPc_ == pc
                                 ? memoProvider_
                                 : findProvider(pc);
        memoValid_ = false;
        const bool alt_pred = altPrediction(pc, provider);
        bool provider_pred = alt_pred;
        if (provider >= 0) {
            Table &t = tables_[provider];
            const unsigned idx = indexOf(pc, provider);
            provider_pred = t.ctr[idx] >= 4;
            if (provider_pred != alt_pred) {
                // The tagged entry mattered: age its useful bit.
                if (provider_pred == taken) {
                    if (t.useful[idx] < 3)
                        ++t.useful[idx];
                } else if (t.useful[idx] > 0) {
                    --t.useful[idx];
                }
            }
            if (taken && t.ctr[idx] < 7)
                ++t.ctr[idx];
            else if (!taken && t.ctr[idx] > 0)
                --t.ctr[idx];
        } else {
            bump2(base_[baseIndex(pc)], taken);
        }

        // On a misprediction, allocate in a longer-history table.
        if (provider_pred != taken &&
            provider + 1 < static_cast<int>(tables_.size())) {
            bool allocated = false;
            for (unsigned j = provider + 1; j < tables_.size(); ++j) {
                Table &t = tables_[j];
                const unsigned idx = indexOf(pc, j);
                if (t.useful[idx] == 0) {
                    t.tag[idx] = tagOf(pc, j);
                    t.ctr[idx] = taken ? 4 : 3;
                    allocated = true;
                    break;
                }
            }
            if (!allocated) {
                for (unsigned j = provider + 1; j < tables_.size();
                     ++j) {
                    const unsigned idx = indexOf(pc, j);
                    if (tables_[j].useful[idx] > 0)
                        --tables_[j].useful[idx];
                }
            }
        }
        history_ = (history_ << 1) | (taken ? 1 : 0);
    }

    DirPredState
    exportState() const override
    {
        DirPredState s;
        s.history = history_;
        s.tables.push_back(packU8(base_));
        for (const Table &t : tables_) {
            s.tables.emplace_back(t.tag.begin(), t.tag.end());
            s.tables.push_back(packU8(t.ctr));
            s.tables.push_back(packU8(t.useful));
        }
        return s;
    }

    bool
    importState(const DirPredState &s) override
    {
        if (s.tables.size() != 1 + 3 * tables_.size() ||
            !unpackU8(s.tables[0], 3, &base_))
            return false;
        for (std::size_t i = 0; i < tables_.size(); ++i) {
            Table &t = tables_[i];
            const auto &tags = s.tables[1 + 3 * i];
            if (tags.size() != t.tag.size())
                return false;
            for (std::size_t e = 0; e < tags.size(); ++e) {
                if (tags[e] > InvalidTag)
                    return false;
                t.tag[e] = static_cast<std::uint16_t>(tags[e]);
            }
            if (!unpackU8(s.tables[2 + 3 * i], 7, &t.ctr) ||
                !unpackU8(s.tables[3 + 3 * i], 3, &t.useful))
                return false;
        }
        history_ = s.history;
        memoValid_ = false;
        return true;
    }

    std::unique_ptr<DirectionPredictor>
    clone() const override
    {
        return std::make_unique<TagePredictor>(*this);
    }

    DirPredKind kind() const override { return DirPredKind::Tage; }

  private:
    static constexpr std::uint16_t InvalidTag = 0xffff;

    struct Table {
        std::vector<std::uint16_t> tag;  //!< InvalidTag = empty
        std::vector<std::uint8_t> ctr;   //!< 3-bit, taken if >= 4
        std::vector<std::uint8_t> useful;  //!< 2-bit
    };

    unsigned
    baseIndex(Addr pc) const
    {
        return static_cast<unsigned>((pc >> 2) %
                                     params_.tageBaseEntries);
    }

    unsigned
    indexOf(Addr pc, unsigned table) const
    {
        const std::uint64_t mix =
            (pc >> 2) ^ ((pc >> 2) >> idxBits_) ^
            fold(history_, histLen_[table], idxBits_) ^ table;
        return static_cast<unsigned>(mix % params_.tageEntries);
    }

    std::uint16_t
    tagOf(Addr pc, unsigned table) const
    {
        const unsigned bits = params_.tageTagBits;
        const std::uint64_t mix =
            (pc >> 2) ^ ((pc >> 2) >> bits) ^
            fold(history_, histLen_[table], bits) ^
            (fold(history_, histLen_[table], bits - 1) << 1);
        return static_cast<std::uint16_t>(
            mix & ((std::uint64_t{1} << bits) - 1));
    }

    /** Longest-history table whose tagged entry matches; -1 = none. */
    int
    findProvider(Addr pc) const
    {
        for (int i = static_cast<int>(tables_.size()) - 1; i >= 0;
             --i) {
            if (tables_[i].tag[indexOf(pc, i)] == tagOf(pc, i))
                return i;
        }
        return -1;
    }

    /** The prediction below @p provider (next match, else base). */
    bool
    altPrediction(Addr pc, int provider) const
    {
        for (int i = provider - 1; i >= 0; --i) {
            const unsigned idx = indexOf(pc, i);
            if (tables_[i].tag[idx] == tagOf(pc, i))
                return tables_[i].ctr[idx] >= 4;
        }
        return base_[baseIndex(pc)] >= 2;
    }

    DirPredParams params_;
    std::vector<std::uint8_t> base_;
    std::vector<Table> tables_;
    std::vector<unsigned> histLen_;
    unsigned idxBits_ = 0;
    std::uint64_t history_ = 0;

    // predict()-to-train() provider memo (not simulation state: the
    // memoized value always equals what recomputation would find).
    Addr memoPc_ = 0;
    int memoProvider_ = -1;
    bool memoValid_ = false;
};

// ---------------------------------------------------------------------------
// Perceptron: per-PC signed weight rows over the global history,
// threshold training (Jimenez & Lin).
// ---------------------------------------------------------------------------

class PerceptronPredictor final : public DirectionPredictor
{
  public:
    explicit PerceptronPredictor(const DirPredParams &params)
        : params_(params),
          weights_(static_cast<std::size_t>(params.perceptronEntries) *
                       (params.perceptronHistBits + 1),
                   0),
          threshold_(static_cast<int>(
              (193 * params.perceptronHistBits) / 100 + 14))
    {
        requirePow2("perceptron", "table size",
                    params.perceptronEntries);
        if (params.perceptronHistBits == 0 ||
            params.perceptronHistBits > 63)
            fatal("perceptron predictor: history must be in [1, 63] "
                  "bits (got %u)", params.perceptronHistBits);
    }

    bool
    predict(Addr pc) override
    {
        const int dot = dotProduct(pc);
        // Park the dot product for the paired train() call (the
        // history cannot advance in between).
        memoPc_ = pc;
        memoDot_ = dot;
        memoValid_ = true;
        if (dot > threshold_ || dot < -threshold_)
            ++confident_;
        return dot >= 0;
    }

    void
    train(Addr pc, bool taken) override
    {
        const int dot = memoValid_ && memoPc_ == pc
                            ? memoDot_
                            : dotProduct(pc);
        memoValid_ = false;
        const bool pred = dot >= 0;
        if (pred != taken ||
            (dot <= threshold_ && dot >= -threshold_)) {
            std::int8_t *row = rowOf(pc);
            adjust(row[0], taken);
            for (unsigned i = 0; i < params_.perceptronHistBits; ++i)
                adjust(row[i + 1], taken == bit(i));
        }
        history_ = (history_ << 1) | (taken ? 1 : 0);
    }

    DirPredState
    exportState() const override
    {
        DirPredState s;
        s.history = history_;
        s.tables.emplace_back();
        s.tables[0].reserve(weights_.size());
        for (const std::int8_t w : weights_)
            s.tables[0].push_back(static_cast<std::uint64_t>(
                static_cast<std::int64_t>(w)));
        return s;
    }

    bool
    importState(const DirPredState &s) override
    {
        if (s.tables.size() != 1 ||
            s.tables[0].size() != weights_.size())
            return false;
        for (std::size_t i = 0; i < weights_.size(); ++i) {
            const auto v =
                static_cast<std::int64_t>(s.tables[0][i]);
            if (v < -128 || v > 127)
                return false;
            weights_[i] = static_cast<std::int8_t>(v);
        }
        history_ = s.history;
        memoValid_ = false;
        return true;
    }

    std::unique_ptr<DirectionPredictor>
    clone() const override
    {
        return std::make_unique<PerceptronPredictor>(*this);
    }

    DirPredKind kind() const override
    {
        return DirPredKind::Perceptron;
    }

  private:
    bool
    bit(unsigned i) const
    {
        return (history_ >> i) & 1;
    }

    const std::int8_t *
    rowOf(Addr pc) const
    {
        const std::size_t row =
            static_cast<std::size_t>((pc >> 2) %
                                     params_.perceptronEntries);
        return &weights_[row * (params_.perceptronHistBits + 1)];
    }

    std::int8_t *
    rowOf(Addr pc)
    {
        return const_cast<std::int8_t *>(
            const_cast<const PerceptronPredictor *>(this)->rowOf(pc));
    }

    int
    dotProduct(Addr pc) const
    {
        const std::int8_t *row = rowOf(pc);
        int dot = row[0];
        for (unsigned i = 0; i < params_.perceptronHistBits; ++i)
            dot += bit(i) ? row[i + 1] : -row[i + 1];
        return dot;
    }

    static void
    adjust(std::int8_t &w, bool up)
    {
        if (up && w < 127)
            ++w;
        else if (!up && w > -128)
            --w;
    }

    DirPredParams params_;
    std::vector<std::int8_t> weights_;
    int threshold_;
    std::uint64_t history_ = 0;

    // predict()-to-train() dot-product memo (not simulation state:
    // the memoized value always equals what recomputation would
    // find).
    Addr memoPc_ = 0;
    int memoDot_ = 0;
    bool memoValid_ = false;
};

} // namespace

std::unique_ptr<DirectionPredictor>
makeDirectionPredictor(const DirPredParams &params)
{
    switch (params.kind) {
      case DirPredKind::Bimodal:
        return std::make_unique<BimodalPredictor>(params);
      case DirPredKind::GShare:
        return std::make_unique<GSharePredictor>(params);
      case DirPredKind::Tournament:
        return std::make_unique<TournamentPredictor>(params);
      case DirPredKind::Tage:
        return std::make_unique<TagePredictor>(params);
      case DirPredKind::Perceptron:
        return std::make_unique<PerceptronPredictor>(params);
    }
    fatal("bad direction-predictor kind %u",
          static_cast<unsigned>(params.kind));
}

} // namespace reno
