/**
 * @file
 * Parameterized branch target buffer: a set-associative, LRU-stamped
 * table mapping a branch PC to its last resolved target. One
 * component of the composable prediction stack (bpred/predictor.hpp);
 * holds the targets of indirect calls and register-indirect jumps
 * (direct branches compute their target from the instruction, and
 * returns prefer the return-address stack).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace reno
{

/** Geometry of the BTB. */
struct BtbParams {
    unsigned entries = 2048;
    unsigned assoc = 4;
};

/** Snapshot of the BTB for functional warming (valid entries only). */
struct BtbState {
    struct Entry {
        std::uint32_t index = 0;
        Addr tag = 0;
        Addr target = 0;
        std::uint64_t lruStamp = 0;
    };
    std::vector<Entry> entries;
    std::uint64_t lruClock = 0;
};

/** Set-associative LRU branch target buffer. */
class Btb
{
  public:
    /** fatal() on a zero-entry or non-power-of-two geometry, zero
     *  associativity, or an associativity that does not divide the
     *  entry count. */
    explicit Btb(const BtbParams &params);

    /** Look up @p pc; true (and @p target set) on a hit. */
    bool lookup(Addr pc, Addr *target) const;

    /** Insert or retrain the target of @p pc (LRU victim choice). */
    void insert(Addr pc, Addr target);

    /** Export / import the table (checkpoint persistence).
     *  importState returns false on any out-of-range index. */
    BtbState exportState() const;
    bool importState(const BtbState &state);

  private:
    struct Entry {
        bool valid = false;
        Addr tag = 0;
        Addr target = 0;
        std::uint64_t lruStamp = 0;
    };

    BtbParams params_;
    std::vector<Entry> entries_;
    std::uint64_t lruClock_ = 0;
};

} // namespace reno
