/**
 * @file
 * The DirectionPredictor interface: one pluggable conditional-branch
 * direction engine of the composable prediction stack
 * (bpred/predictor.hpp assembles the full front end), mirroring the
 * MemLevel design of the memory hierarchy.
 *
 * A direction predictor answers "will the conditional branch at this
 * PC be taken?" and is trained with the resolved outcome. The core
 * does not simulate wrong-path fetch, so predict/train always run in
 * correct-path order -- a predictor never needs history repair.
 *
 * Five engines are provided:
 *  - Bimodal:    per-PC 2-bit counters (no history);
 *  - GShare:     2-bit counters indexed by PC xor global history;
 *  - Tournament: bimodal + gshare with a per-PC chooser (the paper's
 *                16 Kbit hybrid; the default, byte-identical to the
 *                seed predictor);
 *  - Tage:       a bimodal base plus geometric-history tagged tables
 *                (TAGE-lite: partial tags, useful bits, longest-match
 *                provider with alt-prediction fallback);
 *  - Perceptron: per-PC signed weight vectors over the global history
 *                with threshold training.
 *
 * Training is a pure function of the resolved branch stream (never of
 * cycle times), so warmed predictor tables compose across sampled-
 * simulation checkpoint boundaries exactly like cache tags; every
 * engine exports/imports its state through the same generic snapshot.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"

namespace reno
{

/** Which direction engine the stack runs. */
enum class DirPredKind : std::uint8_t {
    Bimodal,
    GShare,
    Tournament,
    Tage,
    Perceptron,
};

/** Display name ("bimodal", "gshare", "tournament", "tage",
 *  "perceptron"). */
const char *dirPredKindName(DirPredKind kind);

/** Configuration of the direction engine. Only the fields of the
 *  selected kind matter, but all are digested/serialized so two
 *  configs compare equal iff they predict identically. */
struct DirPredParams {
    DirPredKind kind = DirPredKind::Tournament;

    // Bimodal / GShare / Tournament (the paper's 16 Kbit budget).
    unsigned bimodalEntries = 4096;  //!< 2-bit counters (8Kb)
    unsigned gshareEntries = 2048;   //!< 2-bit counters (4Kb)
    unsigned chooserEntries = 2048;  //!< 2-bit counters (4Kb)
    unsigned historyBits = 11;       //!< gshare history length

    // Tage: base bimodal + tagged tables with geometric histories.
    unsigned tageBaseEntries = 4096;  //!< base 2-bit counters
    unsigned tageTables = 4;          //!< tagged tables
    unsigned tageEntries = 1024;      //!< entries per tagged table
    unsigned tageTagBits = 9;         //!< partial tag width
    unsigned tageMinHist = 4;         //!< shortest table history
    unsigned tageMaxHist = 64;        //!< longest table history (<=64)

    // Perceptron: per-PC weight rows over the global history.
    unsigned perceptronEntries = 512;   //!< weight rows
    unsigned perceptronHistBits = 16;   //!< inputs per row (<=63)
};

/**
 * Generic snapshot of a direction predictor's tables for functional
 * warming (sampled simulation): the global history register plus the
 * engine's tables flattened to unsigned words (signed entries, e.g.
 * perceptron weights, are stored as two's complement). Each engine
 * documents its own table layout; importState validates shape.
 * Statistics counters are excluded: measured windows are counter
 * deltas, so the absolute base never matters.
 */
struct DirPredState {
    std::uint64_t history = 0;
    std::vector<std::vector<std::uint64_t>> tables;
};

/** One pluggable direction engine. */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predicted direction of the conditional branch at @p pc. */
    virtual bool predict(Addr pc) = 0;

    /** Train with the resolved outcome (advances global history). */
    virtual void train(Addr pc, bool taken) = 0;

    /** Export / import the table state (checkpoint persistence).
     *  importState returns false on any shape mismatch. */
    virtual DirPredState exportState() const = 0;
    virtual bool importState(const DirPredState &state) = 0;

    /** Deep copy (the composite predictor is copyable). */
    virtual std::unique_ptr<DirectionPredictor> clone() const = 0;

    virtual DirPredKind kind() const = 0;
    const char *name() const { return dirPredKindName(kind()); }

    /** Tage: predictions provided by a tagged (history) table. */
    std::uint64_t providerHits() const { return providerHits_; }
    /** Tage: predictions that fell through to the base/alt table. */
    std::uint64_t altHits() const { return altHits_; }
    /** Perceptron: predictions whose |dot product| cleared the
     *  training threshold (high confidence). */
    std::uint64_t confidentPredicts() const { return confident_; }

  protected:
    std::uint64_t providerHits_ = 0;
    std::uint64_t altHits_ = 0;
    std::uint64_t confident_ = 0;
};

/**
 * Build the engine @p params asks for. fatal() on invalid geometry:
 * zero or non-power-of-two table sizes, historyBits of 0 or > 63,
 * zero tagged tables, a tag wider than 15 bits, a geometric history
 * range with max < min or max > 64, or a perceptron history > 63.
 */
std::unique_ptr<DirectionPredictor>
makeDirectionPredictor(const DirPredParams &params);

} // namespace reno
