/**
 * @file
 * Indirect-target table: a direct-mapped, target-history-indexed
 * table for register-indirect jumps and calls whose target changes
 * over time (virtual dispatch, interpreter loops) -- the megamorphic
 * sites a last-target BTB keeps mispredicting. One component of the
 * composable prediction stack (bpred/predictor.hpp).
 *
 * Disabled by default: the paper's configuration resolves indirect
 * targets through the BTB alone, and the paper-geometry bench goldens
 * depend on that. When enabled (the "itt" config variant), indirect
 * lookups try the table first and fall back to the BTB; a path
 * history of recent indirect targets picks the table slot, so one
 * site's alternating targets land in distinct entries.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace reno
{

/** Configuration of the indirect-target table. */
struct IndirectParams {
    bool enabled = false;  //!< default off (paper geometry)
    unsigned entries = 512;
    unsigned historyBits = 8;  //!< folded target-history index bits
};

/** Snapshot of the table for functional warming. */
struct IndirectState {
    struct Entry {
        std::uint32_t index = 0;
        Addr tag = 0;
        Addr target = 0;
    };
    std::vector<Entry> entries;
    std::uint64_t history = 0;
};

/** Direct-mapped, history-hashed indirect-target table. */
class IndirectTargetTable
{
  public:
    /** fatal() on a zero-entry or non-power-of-two geometry or a
     *  history wider than 63 bits (when enabled). */
    explicit IndirectTargetTable(const IndirectParams &params);

    bool enabled() const { return params_.enabled; }

    /** Look up @p pc under the current path history; true on a
     *  tag-matching hit. */
    bool lookup(Addr pc, Addr *target) const;

    /** Record the resolved @p target of the indirect at @p pc and
     *  advance the path history. */
    void update(Addr pc, Addr target);

    /** Export / import the table (checkpoint persistence).
     *  importState returns false on any out-of-range index. */
    IndirectState exportState() const;
    bool importState(const IndirectState &state);

  private:
    struct Entry {
        bool valid = false;
        Addr tag = 0;
        Addr target = 0;
    };

    unsigned index(Addr pc) const;

    IndirectParams params_;
    std::vector<Entry> entries_;
    std::uint64_t history_ = 0;
};

} // namespace reno
