/**
 * @file
 * Return-address stack with explicit overflow/corruption modeling.
 * One component of the composable prediction stack
 * (bpred/predictor.hpp).
 *
 * The stack is a circular buffer: a push beyond capacity silently
 * clobbers the oldest entry (the hardware reality), so a call chain
 * deeper than the stack corrupts the returns of the outer frames --
 * the overflows() counter tracks every clobbering push, and the
 * composite predictor charges the resulting wrong targets to a
 * dedicated RAS-mispredict counter. A pop of an empty stack counts an
 * underflow and produces no target (the composite falls back to the
 * BTB). The core trains in correct-path order, so wrong-path
 * corruption does not arise; depth overflow is the modeled corruption
 * source.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace reno
{

/** Geometry of the return-address stack. */
struct RasParams {
    unsigned entries = 32;
};

/** Snapshot of the stack for functional warming. Statistics counters
 *  are excluded (measured windows are counter deltas). */
struct RasState {
    std::vector<Addr> stack;
    unsigned top = 0;
};

/** Circular return-address stack. */
class ReturnAddressStack
{
  public:
    /** fatal() on a zero-entry stack. */
    explicit ReturnAddressStack(const RasParams &params);

    /** Push a return address (call); counts an overflow when the
     *  push clobbers a live entry. */
    void push(Addr addr);

    /** Pop the predicted return target; false (and an underflow
     *  counted) when the stack is empty. */
    bool pop(Addr *target);

    bool empty() const { return top_ == 0; }

    std::uint64_t overflows() const { return overflows_; }
    std::uint64_t underflows() const { return underflows_; }

    /** Export / import the stack (checkpoint persistence).
     *  importState returns false on a size mismatch. */
    RasState exportState() const;
    bool importState(const RasState &state);

  private:
    RasParams params_;
    std::vector<Addr> stack_;
    unsigned top_ = 0;  //!< index of next push slot (not wrapped)
    std::uint64_t overflows_ = 0;
    std::uint64_t underflows_ = 0;
};

} // namespace reno
