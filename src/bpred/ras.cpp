#include "bpred/ras.hpp"

#include "common/log.hpp"

namespace reno
{

ReturnAddressStack::ReturnAddressStack(const RasParams &params)
    : params_(params), stack_(params.entries, 0)
{
    if (params.entries == 0)
        fatal("RAS: entry count must be non-zero");
}

void
ReturnAddressStack::push(Addr addr)
{
    if (top_ >= params_.entries)
        ++overflows_;  // clobbers the oldest live entry
    stack_[top_ % params_.entries] = addr;
    ++top_;
}

bool
ReturnAddressStack::pop(Addr *target)
{
    if (top_ == 0) {
        ++underflows_;
        return false;
    }
    --top_;
    *target = stack_[top_ % params_.entries];
    return true;
}

RasState
ReturnAddressStack::exportState() const
{
    RasState state;
    state.stack = stack_;
    state.top = top_;
    return state;
}

bool
ReturnAddressStack::importState(const RasState &state)
{
    if (state.stack.size() != stack_.size())
        return false;
    stack_ = state.stack;
    top_ = state.top;
    return true;
}

} // namespace reno
