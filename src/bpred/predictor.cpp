#include "bpred/predictor.hpp"

#include "common/log.hpp"

namespace reno
{

BranchPredictor::BranchPredictor(const BranchPredParams &params)
    : params_(params), dir_(makeDirectionPredictor(params.dir)),
      btb_(params.btb), ras_(params.ras), indirect_(params.indirect)
{
}

BranchPredictor::BranchPredictor(const BranchPredictor &other)
    : params_(other.params_), dir_(other.dir_->clone()),
      btb_(other.btb_), ras_(other.ras_),
      indirect_(other.indirect_), lookups_(other.lookups_),
      dirMispredicts_(other.dirMispredicts_),
      targetMispredicts_(other.targetMispredicts_),
      rasMispredicts_(other.rasMispredicts_)
{
}

BranchPredictor &
BranchPredictor::operator=(const BranchPredictor &other)
{
    if (this == &other)
        return *this;
    params_ = other.params_;
    dir_ = other.dir_->clone();
    btb_ = other.btb_;
    ras_ = other.ras_;
    indirect_ = other.indirect_;
    lookups_ = other.lookups_;
    dirMispredicts_ = other.dirMispredicts_;
    targetMispredicts_ = other.targetMispredicts_;
    rasMispredicts_ = other.rasMispredicts_;
    return *this;
}

Prediction
BranchPredictor::predict(Addr pc, const Instruction &inst)
{
    ++lookups_;
    Prediction pred;
    const Addr fall_through = pc + 4;
    const Addr direct_target =
        pc + 4 + static_cast<Addr>(static_cast<std::int64_t>(inst.imm) * 4);

    switch (inst.info().cls) {
      case InstClass::CtrlCond:
        pred.taken = dir_->predict(pc);
        pred.target = pred.taken ? direct_target : fall_through;
        pred.targetValid = true;
        break;
      case InstClass::CtrlUncond:
        pred.taken = true;
        pred.target = direct_target;
        pred.targetValid = true;
        break;
      case InstClass::CtrlCall: {
        pred.taken = true;
        // Push the return address.
        ras_.push(fall_through);
        if (inst.op == Opcode::BSR) {
            pred.target = direct_target;
            pred.targetValid = true;
        } else if (indirect_.lookup(pc, &pred.target)) {
            pred.targetValid = true;
        } else {
            pred.targetValid = btb_.lookup(pc, &pred.target);
        }
        break;
      }
      case InstClass::CtrlRet:
        pred.taken = true;
        if (inst.ra == RegRa && ras_.pop(&pred.target)) {
            pred.targetValid = true;
            pred.fromRas = true;
        } else if (indirect_.lookup(pc, &pred.target)) {
            pred.targetValid = true;
        } else {
            pred.targetValid = btb_.lookup(pc, &pred.target);
        }
        break;
      default:
        panic("predict() on non-control instruction");
    }
    return pred;
}

void
BranchPredictor::update(Addr pc, const Instruction &inst, bool taken,
                        Addr target)
{
    if (inst.info().cls == InstClass::CtrlCond)
        dir_->train(pc, taken);
    // Indirect targets live in the BTB (and, when enabled, the
    // history-indexed indirect-target table).
    if (inst.op == Opcode::JSR ||
        (inst.op == Opcode::JMP && inst.ra != RegRa)) {
        btb_.insert(pc, target);
        indirect_.update(pc, target);
    }
}

BranchPredState
BranchPredictor::exportState() const
{
    BranchPredState state;
    state.dir = dir_->exportState();
    state.btb = btb_.exportState();
    state.ras = ras_.exportState();
    state.indirect = indirect_.exportState();
    return state;
}

bool
BranchPredictor::importState(const BranchPredState &state)
{
    return dir_->importState(state.dir) &&
           btb_.importState(state.btb) &&
           ras_.importState(state.ras) &&
           indirect_.importState(state.indirect);
}

} // namespace reno
