#include "bpred/btb.hpp"

#include "common/log.hpp"

namespace reno
{

Btb::Btb(const BtbParams &params)
    : params_(params), entries_(params.entries)
{
    if (params.entries == 0 ||
        (params.entries & (params.entries - 1)) != 0)
        fatal("BTB: entry count must be a non-zero power of two "
              "(got %u)", params.entries);
    if (params.assoc == 0)
        fatal("BTB: associativity must be non-zero");
    if (params.entries % params.assoc != 0)
        fatal("BTB: associativity %u does not divide %u entries",
              params.assoc, params.entries);
}

bool
Btb::lookup(Addr pc, Addr *target) const
{
    const unsigned sets = params_.entries / params_.assoc;
    const unsigned set = static_cast<unsigned>((pc >> 2) % sets);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        const Entry &e = entries_[set * params_.assoc + w];
        if (e.valid && e.tag == pc) {
            *target = e.target;
            return true;
        }
    }
    return false;
}

void
Btb::insert(Addr pc, Addr target)
{
    const unsigned sets = params_.entries / params_.assoc;
    const unsigned set = static_cast<unsigned>((pc >> 2) % sets);
    Entry *victim = nullptr;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Entry &e = entries_[set * params_.assoc + w];
        if (e.valid && e.tag == pc) {
            e.target = target;
            e.lruStamp = ++lruClock_;
            return;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (!victim || e.lruStamp < victim->lruStamp)
            victim = &e;
    }
    victim->valid = true;
    victim->tag = pc;
    victim->target = target;
    victim->lruStamp = ++lruClock_;
}

BtbState
Btb::exportState() const
{
    BtbState state;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (!entries_[i].valid)
            continue;
        state.entries.push_back({static_cast<std::uint32_t>(i),
                                 entries_[i].tag, entries_[i].target,
                                 entries_[i].lruStamp});
    }
    state.lruClock = lruClock_;
    return state;
}

bool
Btb::importState(const BtbState &state)
{
    for (Entry &e : entries_)
        e.valid = false;
    for (const BtbState::Entry &e : state.entries) {
        if (e.index >= entries_.size())
            return false;
        entries_[e.index] = {true, e.tag, e.target, e.lruStamp};
    }
    lruClock_ = state.lruClock;
    return true;
}

} // namespace reno
