/**
 * @file
 * Front-end branch prediction: a composable stack assembled from
 * pluggable components, mirroring the declarative design of the
 * memory hierarchy (src/mem/):
 *
 *   DirectionPredictor (bpred/direction.hpp)  -- conditional branches
 *   Btb                (bpred/btb.hpp)        -- indirect targets
 *   ReturnAddressStack (bpred/ras.hpp)        -- returns
 *   IndirectTargetTable(bpred/indirect.hpp)   -- megamorphic sites
 *                                                (optional)
 *
 * The default geometry -- tournament direction predictor with the
 * 16 Kbit budget, 2K-entry 4-way BTB, 32-entry RAS, no indirect
 * table -- is bit-identical to the paper's hardwired hybrid; the
 * bench goldens depend on that. Non-default stacks are selected as
 * '/'-suffix config variants ("RENO/tage", "BASE/perceptron/ras16";
 * see harness/experiment.hpp).
 *
 * The core does not simulate wrong-path fetch (stall-until-resolve),
 * so predictions are made and trained in correct-path order; a
 * misprediction is charged as a front-end redirect bubble and
 * attributed to the component that produced it (direction, target,
 * or RAS).
 */
#pragma once

#include <cstdint>
#include <memory>

#include "bpred/btb.hpp"
#include "bpred/direction.hpp"
#include "bpred/indirect.hpp"
#include "bpred/ras.hpp"
#include "common/types.hpp"
#include "isa/inst.hpp"

namespace reno
{

/** Outcome of a lookup. */
struct Prediction {
    bool taken = false;
    Addr target = 0;
    bool targetValid = false;  //!< BTB/RAS/ITT produced a target
    bool fromRas = false;      //!< target came from the RAS
};

/** Configuration of the full prediction stack. */
struct BranchPredParams {
    DirPredParams dir;
    BtbParams btb;
    RasParams ras;
    IndirectParams indirect;
};

/**
 * Snapshot of the stack's tables for functional warming (sampled
 * simulation). Statistics counters are excluded: measured windows are
 * counter deltas, so the absolute base never matters.
 */
struct BranchPredState {
    DirPredState dir;
    BtbState btb;
    RasState ras;
    IndirectState indirect;
};

/** The composed prediction stack. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BranchPredParams &params = {});

    /** Deep copies (the direction engine is held by pointer; sampled
     *  simulation copies warmed predictors into cores). */
    BranchPredictor(const BranchPredictor &other);
    BranchPredictor &operator=(const BranchPredictor &other);

    /**
     * Predict the control instruction at @p pc. Speculatively updates
     * the RAS (push on call, pop on return).
     */
    Prediction predict(Addr pc, const Instruction &inst);

    /** Train with the resolved outcome. */
    void update(Addr pc, const Instruction &inst, bool taken, Addr target);

    const BranchPredParams &params() const { return params_; }
    const DirectionPredictor &direction() const { return *dir_; }

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t dirMispredicts() const { return dirMispredicts_; }
    std::uint64_t targetMispredicts() const { return targetMispredicts_; }
    std::uint64_t rasMispredicts() const { return rasMispredicts_; }
    std::uint64_t
    mispredicts() const
    {
        return dirMispredicts_ + targetMispredicts_ + rasMispredicts_;
    }
    std::uint64_t rasOverflows() const { return ras_.overflows(); }

    /** Record a misprediction (counted by the core at resolve time,
     *  attributed to the component that produced the bad target). */
    void noteDirMispredict() { ++dirMispredicts_; }
    void noteTargetMispredict() { ++targetMispredicts_; }
    void noteRasMispredict() { ++rasMispredicts_; }

    /** Export / import the stack state (checkpoint persistence).
     *  importState returns false on any shape mismatch. */
    BranchPredState exportState() const;
    bool importState(const BranchPredState &state);

  private:
    BranchPredParams params_;
    std::unique_ptr<DirectionPredictor> dir_;
    Btb btb_;
    ReturnAddressStack ras_;
    IndirectTargetTable indirect_;

    std::uint64_t lookups_ = 0;
    std::uint64_t dirMispredicts_ = 0;
    std::uint64_t targetMispredicts_ = 0;
    std::uint64_t rasMispredicts_ = 0;
};

} // namespace reno
