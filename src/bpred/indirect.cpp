#include "bpred/indirect.hpp"

#include "common/log.hpp"

namespace reno
{

IndirectTargetTable::IndirectTargetTable(const IndirectParams &params)
    : params_(params)
{
    if (!params.enabled)
        return;
    if (params.entries == 0 ||
        (params.entries & (params.entries - 1)) != 0)
        fatal("indirect-target table: entry count must be a non-zero "
              "power of two (got %u)", params.entries);
    if (params.historyBits == 0 || params.historyBits > 63)
        fatal("indirect-target table: historyBits must be in [1, 63] "
              "(got %u)", params.historyBits);
    entries_.resize(params.entries);
}

unsigned
IndirectTargetTable::index(Addr pc) const
{
    const std::uint64_t hist =
        history_ & ((std::uint64_t{1} << params_.historyBits) - 1);
    return static_cast<unsigned>(((pc >> 2) ^ hist) %
                                 params_.entries);
}

bool
IndirectTargetTable::lookup(Addr pc, Addr *target) const
{
    if (!params_.enabled)
        return false;
    const Entry &e = entries_[index(pc)];
    if (!e.valid || e.tag != pc)
        return false;
    *target = e.target;
    return true;
}

void
IndirectTargetTable::update(Addr pc, Addr target)
{
    if (!params_.enabled)
        return;
    Entry &e = entries_[index(pc)];
    e.valid = true;
    e.tag = pc;
    e.target = target;
    // Path history: fold the resolved target in, so the next
    // occurrence of a megamorphic site indexes by where control has
    // been, not just where it is. The xor-fold pulls the high target
    // bits into the low history bits (aligned code addresses differ
    // mostly in their upper bits).
    std::uint64_t t = target >> 2;
    t ^= t >> 7;
    t ^= t >> 17;
    history_ = (history_ << 2) ^ t;
}

IndirectState
IndirectTargetTable::exportState() const
{
    IndirectState state;
    state.history = history_;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (!entries_[i].valid)
            continue;
        state.entries.push_back({static_cast<std::uint32_t>(i),
                                 entries_[i].tag,
                                 entries_[i].target});
    }
    return state;
}

bool
IndirectTargetTable::importState(const IndirectState &state)
{
    if (!params_.enabled)
        return state.entries.empty() && state.history == 0;
    for (Entry &e : entries_)
        e.valid = false;
    for (const IndirectState::Entry &e : state.entries) {
        if (e.index >= entries_.size())
            return false;
        entries_[e.index] = {true, e.tag, e.target};
    }
    history_ = state.history;
    return true;
}

} // namespace reno
