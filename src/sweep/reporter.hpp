/**
 * @file
 * Pluggable campaign reporters: turn submission-ordered campaign
 * results into an aligned text table, a JSON array, or CSV, via the
 * generic emitters in common/report.hpp. The per-figure benchmark
 * binaries keep their bespoke tables; these reporters serve the
 * reno-sweep driver and any ad-hoc campaign.
 */
#pragma once

#include <optional>
#include <string>

#include "common/report.hpp"
#include "sweep/campaign.hpp"

namespace reno::sweep
{

enum class ReportFormat { Table, Json, Csv };

/** Parse "table" / "json" / "csv"; nullopt otherwise. */
std::optional<ReportFormat> reportFormatFromName(const std::string &s);

/** Flatten one job + result into a report record. */
ReportRecord recordFor(const Job &job, const JobResult &result);

/** Render a whole campaign in @p format (trailing newline included). */
std::string renderResults(const CampaignResults &results,
                          ReportFormat format);

} // namespace reno::sweep
