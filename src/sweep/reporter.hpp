/**
 * @file
 * Pluggable campaign reporters: turn submission-ordered campaign
 * results into an aligned text table, a JSON array, or CSV, via the
 * generic emitters in common/report.hpp. The per-figure benchmark
 * binaries keep their bespoke tables; these reporters serve the
 * reno-sweep driver and any ad-hoc campaign.
 */
#pragma once

#include <optional>
#include <string>

#include "common/report.hpp"
#include "sweep/campaign.hpp"

namespace reno::sweep
{

enum class ReportFormat { Table, Json, Csv };

/** Parse "table" / "json" / "csv"; nullopt otherwise. */
std::optional<ReportFormat> reportFormatFromName(const std::string &s);

/** Flatten one job + result into a report record. */
ReportRecord recordFor(const Job &job, const JobResult &result);

/**
 * Like recordFor, but with every SimResult counter under its
 * canonical registry name (uarch/sim_result.hpp) instead of the
 * curated summary columns: the full named-stat export behind
 * reno-sweep --all-stats.
 */
ReportRecord recordForFull(const Job &job, const JobResult &result);

/** Render a whole campaign in @p format (trailing newline included).
 *  @p all_stats selects the full named-stat records. */
std::string renderResults(const CampaignResults &results,
                          ReportFormat format, bool all_stats = false);

} // namespace reno::sweep
