/**
 * @file
 * A minimal fixed-size worker thread pool for the campaign engine.
 * Tasks are opaque closures; waitIdle() blocks until every submitted
 * task has finished, so the engine can impose its own deterministic,
 * submission-ordered result collection independent of execution order.
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace reno::sweep
{

/** Fixed-size thread pool. */
class ThreadPool
{
  public:
    /** Start @p num_workers worker threads (at least 1). */
    explicit ThreadPool(unsigned num_workers);

    /** Drains remaining tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task. */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and no task is running. */
    void waitIdle();

    unsigned numWorkers() const { return unsigned(workers_.size()); }

  private:
    void workerLoop(unsigned lane);

    std::mutex mu_;
    std::condition_variable taskReady_;
    std::condition_variable idle_;
    std::deque<std::function<void()>> queue_;
    std::size_t running_ = 0;
    bool shutdown_ = false;
    std::vector<std::thread> workers_;
};

} // namespace reno::sweep
