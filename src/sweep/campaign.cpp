#include "sweep/campaign.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>

#include "common/clock.hpp"
#include "common/digest.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "sweep/thread_pool.hpp"

namespace reno::sweep
{

unsigned
resolveJobCount(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("RENO_JOBS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n >= 1)
            return unsigned(n);
        warn("ignoring invalid RENO_JOBS='%s'", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

CampaignOptions
parseCampaignArgs(int argc, char **argv)
{
    CampaignOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            const std::string prefix = std::string(flag) + "=";
            if (arg.rfind(prefix, 0) == 0)
                return arg.substr(prefix.size());
            if (arg == flag && i + 1 < argc)
                return argv[++i];
            return "";
        };
        if (arg == "--jobs" || arg.rfind("--jobs=", 0) == 0) {
            const std::string v = value("--jobs");
            const long n = std::strtol(v.c_str(), nullptr, 10);
            if (n >= 1)
                opts.jobs = unsigned(n);
            else
                fatal("--jobs expects a positive integer, got '%s'",
                      v.c_str());
        } else if (arg == "--cache-dir" ||
                   arg.rfind("--cache-dir=", 0) == 0) {
            opts.cacheDir = value("--cache-dir");
            if (opts.cacheDir.empty())
                fatal("--cache-dir expects a directory path");
        } else if (arg == "--sweep-stats") {
            opts.stats = true;
        }
    }
    return opts;
}

bool
isCampaignFlag(const std::string &arg, bool *takes_value)
{
    *takes_value = false;
    if (arg == "--jobs" || arg == "--cache-dir") {
        *takes_value = true;
        return true;
    }
    return arg == "--sweep-stats" ||
           arg.rfind("--jobs=", 0) == 0 ||
           arg.rfind("--cache-dir=", 0) == 0;
}

std::size_t
Campaign::add(Job job)
{
    if (!job.workload)
        fatal("campaign job has no workload");
    jobs_.push_back(std::move(job));
    return jobs_.size() - 1;
}

std::size_t
Campaign::add(const Workload &workload, const NamedConfig &config,
              const std::string &tag, bool want_cpa)
{
    Job job;
    job.workload = &workload;
    job.config = config;
    job.tag = tag;
    job.wantCpa = want_cpa;
    return add(std::move(job));
}

void
Campaign::addCross(const std::vector<const Workload *> &workloads,
                   const std::vector<NamedConfig> &configs,
                   const std::string &tag)
{
    for (const Workload *w : workloads) {
        for (const NamedConfig &cfg : configs)
            add(*w, cfg, tag);
    }
}

JobResult
executeJob(const Job &job)
{
    JobResult r;
    if (job.sampled()) {
        if (job.wantCpa)
            fatal("critical-path analysis is not supported for "
                  "sampled jobs");
        obs::CpiStack window_stack;
        r.sim = sample::runIntervalDetailed(*job.workload,
                                            job.config.params,
                                            job.window,
                                            &job.checkpoint,
                                            &window_stack);
        if (obs::CpiAccounting::instance().stackEnabled()) {
            r.cpi.valid = true;
            r.cpi.machine = window_stack;
        }
        return r;
    }
    if (job.wantCpa) {
        CriticalPathAnalyzer cpa(job.cpaChunk,
                                 job.config.params.robEntries,
                                 job.config.params.iqEntries);
        RunOutput run =
            runWorkload(*job.workload, job.config.params, &cpa);
        r.sim = run.sim;
        r.cpi = std::move(run.cpi);
        r.hasCpa = true;
        r.cpaWeights = cpa.buckets();
    } else {
        RunOutput run = runWorkload(*job.workload, job.config.params);
        r.sim = run.sim;
        r.cpi = std::move(run.cpi);
    }
    return r;
}

CampaignResults
Campaign::run(const CampaignOptions &options) const
{
    const unsigned workers = resolveJobCount(options.jobs);

    ResultCache local_cache(options.cacheDir);
    ResultCache &cache = options.cache ? *options.cache : local_cache;

    // Deduplicate by content digest: one work slot per distinct job.
    struct Slot {
        const Job *job;
        std::uint64_t digest;
        JobResult result;
        bool ready = false;
    };
    std::vector<Slot> slots;
    std::map<std::uint64_t, std::size_t> slot_index;
    std::vector<std::size_t> job_slot(jobs_.size());
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        const std::uint64_t digest = jobDigest(jobs_[i]);
        auto [it, inserted] =
            slot_index.emplace(digest, slots.size());
        if (inserted)
            slots.push_back(Slot{&jobs_[i], digest, {}, false});
        job_slot[i] = it->second;
    }

    CampaignResults out;
    out.jobs_ = jobs_;
    out.stats_.jobs = jobs_.size();
    out.stats_.unique = slots.size();
    out.stats_.workers = workers;

    auto &metrics = obs::MetricsRegistry::instance();
    auto &progress = obs::ProgressMeter::instance();
    auto &tracer = obs::Tracer::instance();
    progress.addTotal(slots.size());

    // Satisfy from the cache first.
    std::vector<Slot *> misses;
    for (Slot &slot : slots) {
        if (cache.lookup(slot.digest, &slot.result)) {
            slot.ready = true;
            ++out.stats_.cacheHits;
            if (tracer.enabled()) {
                tracer.instant("cache-hit:" +
                                   slot.job->workload->name + "/" +
                                   slot.job->config.name,
                               "cache",
                               obs::TraceArgs()
                                   .add("digest",
                                        digestHex(slot.digest))
                                   .str());
            }
            progress.jobDone(0, true);
        } else {
            misses.push_back(&slot);
        }
    }

    // Simulate the misses: inline when serial, else on the pool. The
    // results land in pre-allocated slots, so collection order (and
    // therefore all downstream output) is independent of scheduling.
    out.stats_.simulated = misses.size();

    // Host-side engine telemetry only: timing never feeds back into
    // the simulated results, which stay byte-identical with obs off.
    std::atomic<std::uint64_t> busy_micros{0};
    auto run_slot = [&](Slot *slot, std::uint64_t enqueue_us) {
        const std::uint64_t start_us = steadyClock().nowMicros();
        metrics.histogram("sweep.job.queue_wait_ms")
            .record(static_cast<double>(start_us - enqueue_us) / 1e3);
        {
            obs::TraceSpan span(
                "job:" + slot->job->workload->name + "/" +
                    slot->job->config.name,
                "job",
                obs::TraceArgs()
                    .add("workload", slot->job->workload->name)
                    .add("config", slot->job->config.name)
                    .add("tag", slot->job->tag)
                    .add("digest", digestHex(slot->digest))
                    .add("sampled",
                         std::uint64_t(slot->job->sampled() ? 1 : 0))
                    .add("cache", "miss")
                    .str());
            slot->result = executeJob(*slot->job);
        }
        const std::uint64_t end_us = steadyClock().nowMicros();
        busy_micros.fetch_add(end_us - start_us,
                              std::memory_order_relaxed);
        metrics.histogram("sweep.job.latency_ms")
            .record(static_cast<double>(end_us - start_us) / 1e3);
        progress.jobDone(slot->result.sim.retired, false);
        slot->ready = true;
    };

    const std::uint64_t exec_start_us = steadyClock().nowMicros();
    unsigned used_workers = 1;
    if (workers <= 1 || misses.size() <= 1) {
        for (Slot *slot : misses)
            run_slot(slot, steadyClock().nowMicros());
    } else {
        ThreadPool pool(
            unsigned(std::min<std::size_t>(workers, misses.size())));
        used_workers = pool.numWorkers();
        for (Slot *slot : misses) {
            const std::uint64_t enqueue_us = steadyClock().nowMicros();
            pool.submit([&run_slot, slot, enqueue_us] {
                run_slot(slot, enqueue_us);
            });
        }
        pool.waitIdle();
    }
    const std::uint64_t exec_wall_us =
        steadyClock().nowMicros() - exec_start_us;

    for (Slot *slot : misses)
        cache.store(slot->digest, slot->result);

    metrics.counter("sweep.jobs.submitted").inc(out.stats_.jobs);
    metrics.counter("sweep.jobs.unique").inc(out.stats_.unique);
    metrics.counter("sweep.jobs.simulated").inc(out.stats_.simulated);
    metrics.counter("sweep.jobs.cache_hits").inc(out.stats_.cacheHits);
    metrics.gauge("sweep.pool.workers")
        .set(static_cast<double>(used_workers));
    if (!misses.empty() && exec_wall_us) {
        metrics.gauge("sweep.pool.utilization")
            .set(static_cast<double>(
                     busy_micros.load(std::memory_order_relaxed)) /
                 (static_cast<double>(used_workers) *
                  static_cast<double>(exec_wall_us)));
    }
    metrics.gauge("sweep.cache.hit_ratio").set(cache.hitRatio());
    metrics.gauge("sweep.cache.memory_hits")
        .set(static_cast<double>(cache.memoryHits()));
    metrics.gauge("sweep.cache.disk_hits")
        .set(static_cast<double>(cache.diskHits()));
    metrics.gauge("sweep.cache.misses")
        .set(static_cast<double>(cache.misses()));
    metrics.gauge("sweep.cache.stores")
        .set(static_cast<double>(cache.stores()));

    out.results_.reserve(jobs_.size());
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        const Slot &slot = slots[job_slot[i]];
        if (!slot.ready)
            panic("campaign slot %zu never completed", job_slot[i]);
        out.results_.push_back(slot.result);
    }

    if (options.stats) {
        std::fprintf(stderr,
                     "[sweep] %zu jobs, %zu unique, %zu simulated, "
                     "%zu cache hits, %u workers\n",
                     out.stats_.jobs, out.stats_.unique,
                     out.stats_.simulated, out.stats_.cacheHits,
                     workers);
        std::fprintf(
            stderr,
            "[sweep] cache: %llu memory hits, %llu disk hits, "
            "%llu misses, %llu stores\n",
            static_cast<unsigned long long>(cache.memoryHits()),
            static_cast<unsigned long long>(cache.diskHits()),
            static_cast<unsigned long long>(cache.misses()),
            static_cast<unsigned long long>(cache.stores()));
        const auto &latency =
            metrics.histogram("sweep.job.latency_ms");
        if (latency.count() > 0) {
            std::fprintf(stderr,
                         "[sweep] job latency ms: p50 %.1f p95 %.1f "
                         "p99 %.1f\n",
                         latency.percentile(50.0),
                         latency.percentile(95.0),
                         latency.percentile(99.0));
        }
    }
    return out;
}

const JobResult &
CampaignResults::get(const std::string &workload,
                     const std::string &config,
                     const std::string &tag) const
{
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        const Job &j = jobs_[i];
        if (j.workload->name == workload && j.config.name == config &&
            j.tag == tag)
            return results_[i];
    }
    fatal("campaign has no job (workload='%s', config='%s', tag='%s')",
          workload.c_str(), config.c_str(), tag.c_str());
}

} // namespace reno::sweep
