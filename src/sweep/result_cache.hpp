/**
 * @file
 * Content-addressed simulation result cache. Results are keyed by the
 * job content digest (kernel source + seed + serialized machine
 * configuration + CPA request), not by workload/config *names*, so a
 * renamed configuration with identical parameters still hits and two
 * same-named configurations with different parameters never collide.
 *
 * The in-memory map is always active; when constructed with a
 * directory, every stored result is also persisted as one small text
 * file per digest, and lookups fall back to disk -- a warm directory
 * lets a repeated figure campaign skip simulation entirely.
 */
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sweep/job.hpp"

namespace reno::sweep
{

/** Thread-safe content-addressed cache of JobResults. */
class ResultCache
{
  public:
    /** @param dir  persistence directory; empty = in-memory only.
     *  Created on first store if missing. */
    explicit ResultCache(std::string dir = "");

    /**
     * Look up @p digest: memory first, then the persistence directory.
     * A disk hit is promoted into memory. Returns true and fills
     * @p out on a hit.
     */
    bool lookup(std::uint64_t digest, JobResult *out);

    /** Insert a result (memory, plus disk when persistent). */
    void store(std::uint64_t digest, const JobResult &result);

    // --- statistics ---------------------------------------------------
    std::uint64_t memoryHits() const { return memoryHits_; }
    std::uint64_t diskHits() const { return diskHits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t stores() const { return stores_; }
    /** lookup() hits of either kind over total lookups; 0 when idle. */
    double hitRatio() const;
    std::size_t size() const;
    const std::string &dir() const { return dir_; }

    /** Serialize a result to the persistence text format. */
    static std::string encode(const JobResult &result);

    /** Parse the persistence format; returns false on any mismatch. */
    static bool decode(const std::string &text, JobResult *out);

  private:
    std::string pathFor(std::uint64_t digest) const;
    bool loadFromDisk(std::uint64_t digest, JobResult *out);
    void storeToDisk(std::uint64_t digest, const JobResult &result);

    mutable std::mutex mu_;
    std::unordered_map<std::uint64_t, JobResult> mem_;
    std::string dir_;
    std::uint64_t memoryHits_ = 0;
    std::uint64_t diskHits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t stores_ = 0;
};

} // namespace reno::sweep
