#include "sweep/result_cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/digest.hpp"
#include "common/log.hpp"

namespace reno::sweep
{

namespace
{

// The serialized SimResult fields and their file order come from the
// canonical registry in uarch/sim_result.hpp, whose order is frozen
// to this file format. v2 appended the per-memory-level counter
// block, v3 the branch-prediction breakdown, v4 the multi-core
// coherence + per-core block; older entries fail the tag check and
// are recomputed.
constexpr const char *FormatTag = "reno-result v4";

} // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string
ResultCache::pathFor(std::uint64_t digest) const
{
    return dir_ + "/" + digestHex(digest) + ".result";
}

bool
ResultCache::lookup(std::uint64_t digest, JobResult *out)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = mem_.find(digest);
        if (it != mem_.end()) {
            *out = it->second;
            ++memoryHits_;
            return true;
        }
    }
    if (!dir_.empty() && loadFromDisk(digest, out)) {
        std::lock_guard<std::mutex> lock(mu_);
        mem_.emplace(digest, *out);
        ++diskHits_;
        return true;
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
    return false;
}

void
ResultCache::store(std::uint64_t digest, const JobResult &result)
{
    // The CPI-stack side channel is never cached (the disk format
    // predates it); dropping it from the memory tier too keeps the
    // invariant uniform: a cache hit never carries a stack.
    JobResult cached = result;
    cached.cpi = obs::CpiReport{};
    {
        std::lock_guard<std::mutex> lock(mu_);
        mem_[digest] = std::move(cached);
        ++stores_;
    }
    if (!dir_.empty())
        storeToDisk(digest, result);
}

double
ResultCache::hitRatio() const
{
    const std::uint64_t hits = memoryHits_ + diskHits_;
    const std::uint64_t lookups = hits + misses_;
    return lookups ? static_cast<double>(hits) /
                         static_cast<double>(lookups)
                   : 0.0;
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return mem_.size();
}

std::string
ResultCache::encode(const JobResult &result)
{
    std::string out = FormatTag;
    out += '\n';
    for (const SimStatField &f : simResultFields())
        out += strprintf("%s %llu\n", f.name,
                         static_cast<unsigned long long>(
                             statValue(result.sim, f)));
    out += strprintf("hasCpa %d\n", result.hasCpa ? 1 : 0);
    if (result.hasCpa) {
        for (unsigned b = 0; b < NumCpBuckets; ++b)
            out += strprintf("cpa%u %llu\n", b,
                             static_cast<unsigned long long>(
                                 result.cpaWeights[b]));
    }
    return out;
}

bool
ResultCache::decode(const std::string &text, JobResult *out)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != FormatTag)
        return false;

    JobResult r;
    auto expect = [&in, &line](const std::string &key,
                               std::uint64_t *value) {
        if (!std::getline(in, line))
            return false;
        const std::size_t space = line.find(' ');
        if (space == std::string::npos ||
            line.compare(0, space, key) != 0)
            return false;
        try {
            *value = std::stoull(line.substr(space + 1));
        } catch (...) {
            return false;
        }
        return true;
    };

    for (const SimStatField &f : simResultFields()) {
        if (!expect(f.name, &statRef(r.sim, f)))
            return false;
    }
    std::uint64_t has_cpa = 0;
    if (!expect("hasCpa", &has_cpa))
        return false;
    r.hasCpa = has_cpa != 0;
    if (r.hasCpa) {
        for (unsigned b = 0; b < NumCpBuckets; ++b) {
            if (!expect(strprintf("cpa%u", b), &r.cpaWeights[b]))
                return false;
        }
    }
    *out = r;
    return true;
}

bool
ResultCache::loadFromDisk(std::uint64_t digest, JobResult *out)
{
    std::ifstream in(pathFor(digest));
    if (!in)
        return false;
    std::stringstream buf;
    buf << in.rdbuf();
    if (!decode(buf.str(), out)) {
        warn("result cache: ignoring malformed entry %s",
             pathFor(digest).c_str());
        return false;
    }
    return true;
}

void
ResultCache::storeToDisk(std::uint64_t digest, const JobResult &result)
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        warn("result cache: cannot create '%s': %s", dir_.c_str(),
             ec.message().c_str());
        return;
    }
    // Write-then-rename so a concurrent reader never sees a torn file.
    const std::string path = pathFor(digest);
    const std::string tmp =
        path + strprintf(".tmp%llu",
                         static_cast<unsigned long long>(digest));
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            warn("result cache: cannot write '%s'", tmp.c_str());
            return;
        }
        out << encode(result);
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        warn("result cache: rename to '%s' failed: %s", path.c_str(),
             ec.message().c_str());
        std::filesystem::remove(tmp, ec);
    }
}

} // namespace reno::sweep
