#include "sweep/thread_pool.hpp"

#include "common/log.hpp"
#include "obs/trace.hpp"

namespace reno::sweep
{

ThreadPool::ThreadPool(unsigned num_workers)
{
    if (num_workers < 1)
        num_workers = 1;
    workers_.reserve(num_workers);
    for (unsigned i = 0; i < num_workers; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    waitIdle();
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
    }
    taskReady_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
    }
    taskReady_.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void
ThreadPool::workerLoop(unsigned lane)
{
    if (obs::Tracer::instance().enabled())
        obs::Tracer::instance().threadName(
            strprintf("pool-worker-%u", lane));
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        taskReady_.wait(lock,
                        [this] { return shutdown_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (shutdown_)
                return;
            continue;
        }
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        ++running_;
        lock.unlock();
        task();
        lock.lock();
        --running_;
        if (queue_.empty() && running_ == 0)
            idle_.notify_all();
    }
}

} // namespace reno::sweep
