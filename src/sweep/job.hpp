/**
 * @file
 * Campaign jobs: the declarative unit of work of the simulation-
 * campaign engine. A job names a workload, a machine configuration
 * and (optionally) a critical-path analysis; the engine decides how
 * to execute it (worker thread, result cache, deduplication).
 */
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "cpa/critpath.hpp"
#include "harness/experiment.hpp"
#include "sample/interval.hpp"
#include "workloads/workloads.hpp"

namespace reno::sweep
{

/** One simulation job of a campaign. */
struct Job {
    const Workload *workload = nullptr;
    NamedConfig config;
    /** Attach a critical-path analyzer and record its buckets. */
    bool wantCpa = false;
    /** CPA analysis chunk size (instructions); digested, so changing
     *  it invalidates cached CPA results. */
    std::uint64_t cpaChunk = 1'000'000;
    /**
     * Free-form label distinguishing jobs that share a workload and a
     * config *name* but not config contents (e.g. the same "BASE"
     * preset at two machine widths). Part of the lookup key, not the
     * content digest.
     */
    std::string tag;

    /**
     * Sampled simulation: when window.measureInsts > 0 the job is one
     * interval of a sampled run -- fast-forward to window.startInst,
     * warm up, measure -- and its result is the measured window's
     * stats delta. The window is part of the content digest.
     */
    sample::IntervalWindow window;

    /**
     * Optional execution accelerator for a sampled job: a functional
     * + warm-state checkpoint at or before window.startInst. The
     * result is identical with or without it (a checkpoint is derived
     * state), so it is NOT part of the content digest.
     */
    sample::SampleCheckpoint checkpoint;

    bool sampled() const { return window.measureInsts > 0; }
};

/** What the engine returns (and caches) for one job. */
struct JobResult {
    SimResult sim;
    bool hasCpa = false;
    /** Raw critical-path bucket weights (exact, cache-stable). */
    std::array<std::uint64_t, NumCpBuckets> cpaWeights{};

    /**
     * CPI-stack / hotspot side channel, valid only when
     * obs::CpiAccounting was enabled while this job simulated.
     * Deliberately NOT serialized by the result cache (the cache
     * format and job digests are profiling-agnostic), so a cache hit
     * always comes back with cpi.valid == false.
     */
    obs::CpiReport cpi;

    /** Normalized critical-path breakdown (fractions summing to ~1). */
    std::array<double, NumCpBuckets>
    cpaBreakdown() const
    {
        std::array<double, NumCpBuckets> out{};
        std::uint64_t total = 0;
        for (const std::uint64_t w : cpaWeights)
            total += w;
        if (!total)
            return out;
        for (unsigned i = 0; i < NumCpBuckets; ++i)
            out[i] = double(cpaWeights[i]) / double(total);
        return out;
    }
};

/**
 * Content digest of a job: kernel source, input seed, the full
 * serialized machine configuration, and the CPA request. Everything
 * that determines the simulation's outcome -- and nothing else (names
 * and tags are display-only).
 */
std::uint64_t jobDigest(const Job &job);

} // namespace reno::sweep
