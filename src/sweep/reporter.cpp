#include "sweep/reporter.hpp"

namespace reno::sweep
{

std::optional<ReportFormat>
reportFormatFromName(const std::string &s)
{
    if (s == "table")
        return ReportFormat::Table;
    if (s == "json")
        return ReportFormat::Json;
    if (s == "csv")
        return ReportFormat::Csv;
    return std::nullopt;
}

namespace
{

void
addJobIdentity(ReportRecord &rec, const Job &job)
{
    addField(rec, "workload", job.workload->name);
    addField(rec, "suite", job.workload->suite);
    addField(rec, "config", job.config.name);
    if (!job.tag.empty())
        addField(rec, "tag", job.tag);
}

void
addCpaBreakdown(ReportRecord &rec, const JobResult &r)
{
    if (!r.hasCpa)
        return;
    const auto b = r.cpaBreakdown();
    for (unsigned i = 0; i < NumCpBuckets; ++i) {
        addField(rec,
                 std::string("cp_") +
                     cpBucketName(static_cast<CpBucket>(i)),
                 b[i], 4);
    }
}

} // namespace

ReportRecord
recordFor(const Job &job, const JobResult &r)
{
    ReportRecord rec;
    addJobIdentity(rec, job);
    addField(rec, "cycles", r.sim.cycles);
    addField(rec, "retired", r.sim.retired);
    addField(rec, "ipc", r.sim.ipc(), 4);
    addField(rec, "elim_me_pct",
             r.sim.elimFraction(ElimKind::Move) * 100, 2);
    addField(rec, "elim_cf_pct",
             r.sim.elimFraction(ElimKind::Fold) * 100, 2);
    addField(rec, "elim_csera_pct",
             (r.sim.elimFraction(ElimKind::Cse) +
              r.sim.elimFraction(ElimKind::Ra)) * 100, 2);
    addField(rec, "elim_total_pct", r.sim.elimFraction() * 100, 2);
    addField(rec, "it_accesses", r.sim.itAccesses);
    addField(rec, "bp_mispredicts", r.sim.bpMispredicts);
    addField(rec, "dcache_misses", r.sim.dcacheMisses);
    addField(rec, "l2_misses", r.sim.l2Misses);
    addCpaBreakdown(rec, r);
    return rec;
}

ReportRecord
recordForFull(const Job &job, const JobResult &r)
{
    ReportRecord rec;
    addJobIdentity(rec, job);
    addField(rec, "ipc", r.sim.ipc(), 4);
    for (const SimStatField &f : simResultFields())
        addField(rec, f.name, statValue(r.sim, f));
    addCpaBreakdown(rec, r);
    return rec;
}

std::string
renderResults(const CampaignResults &results, ReportFormat format,
              bool all_stats)
{
    std::vector<ReportRecord> records;
    records.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i)
        records.push_back(all_stats
                              ? recordForFull(results.job(i),
                                              results.at(i))
                              : recordFor(results.job(i),
                                          results.at(i)));
    switch (format) {
      case ReportFormat::Json:
        return renderJson(records);
      case ReportFormat::Csv:
        return renderCsv(records);
      case ReportFormat::Table:
      default:
        return renderTable(records);
    }
}

} // namespace reno::sweep
