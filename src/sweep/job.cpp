#include "sweep/job.hpp"

#include "common/digest.hpp"
#include "common/serialize.hpp"

namespace reno::sweep
{

std::uint64_t
jobDigest(const Job &job)
{
    Fnv64 h;
    h.update("reno-job-v1");
    h.update(std::string(job.workload->source));
    h.update(job.workload->seed);
    h.update(serializeCoreParams(job.config.params));
    h.update(job.wantCpa);
    if (job.wantCpa)
        h.update(job.cpaChunk);
    return h.value();
}

} // namespace reno::sweep
