#include "sweep/job.hpp"

#include "common/digest.hpp"
#include "common/serialize.hpp"

namespace reno::sweep
{

std::uint64_t
jobDigest(const Job &job)
{
    Fnv64 h;
    h.update("reno-job-v1");
    h.update(std::string(job.workload->source));
    h.update(job.workload->seed);
    h.update(serializeCoreParams(job.config.params));
    h.update(job.wantCpa);
    if (job.wantCpa)
        h.update(job.cpaChunk);
    // Digested only when sampled, so pre-sampling cache entries for
    // full runs keep their keys.
    if (job.sampled()) {
        h.update("sample-v1");
        h.update(job.window.startInst);
        h.update(job.window.warmupInsts);
        h.update(job.window.measureInsts);
    }
    return h.value();
}

} // namespace reno::sweep
