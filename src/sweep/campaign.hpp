/**
 * @file
 * The simulation-campaign engine. A campaign is a declarative set of
 * jobs (workload x configuration [x CPA]); the engine
 *
 *   - content-digests every job and deduplicates identical work, so a
 *     figure that re-measures the same baseline dozens of times
 *     simulates it once,
 *   - satisfies jobs from the result cache (in-memory, optionally
 *     disk-persistent) before simulating anything,
 *   - executes the remaining unique jobs on a worker thread pool sized
 *     to the host (overridable via --jobs / RENO_JOBS), and
 *   - collects results in submission order, so parallel output is
 *     bit-identical to a serial run.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/job.hpp"
#include "sweep/result_cache.hpp"

namespace reno::sweep
{

/** Engine knobs, typically parsed from argv / environment. */
struct CampaignOptions {
    /** Worker threads; 0 = RENO_JOBS env, else
     *  std::thread::hardware_concurrency(). 1 = run serially inline. */
    unsigned jobs = 0;
    /** Result-cache persistence directory ("" = in-memory only). */
    std::string cacheDir;
    /** Share a cache across several run() calls (overrides cacheDir). */
    ResultCache *cache = nullptr;
    /** Print an execution summary to stderr after the run. */
    bool stats = false;
};

/** Resolve a --jobs request against RENO_JOBS and the host. */
unsigned resolveJobCount(unsigned requested);

/**
 * Parse the engine's standard flags out of argv: --jobs N (or
 * --jobs=N), --cache-dir D (or --cache-dir=D), --sweep-stats.
 * Unrecognized arguments are ignored so callers can layer their own.
 */
CampaignOptions parseCampaignArgs(int argc, char **argv);

/**
 * True if @p arg is one of the engine's standard flags, so drivers
 * with strict argument parsing can skip them. Sets @p *takes_value
 * when the flag consumes the following argv entry (detached form).
 */
bool isCampaignFlag(const std::string &arg, bool *takes_value);

/** Execution counters of one run() call. */
struct CampaignStats {
    std::size_t jobs = 0;        //!< jobs submitted
    std::size_t unique = 0;      //!< distinct content digests
    std::size_t simulated = 0;   //!< actually executed simulations
    std::size_t cacheHits = 0;   //!< unique jobs satisfied by cache
    unsigned workers = 0;        //!< worker threads used
};

/** Jobs plus submission-ordered results, with keyed lookup. */
class CampaignResults
{
  public:
    std::size_t size() const { return results_.size(); }

    const Job &job(std::size_t i) const { return jobs_[i]; }
    const JobResult &at(std::size_t i) const { return results_[i]; }

    /** Lookup by (workload name, config name, tag); fatal() if the
     *  campaign contains no such job. */
    const JobResult &get(const std::string &workload,
                         const std::string &config,
                         const std::string &tag = "") const;

    const CampaignStats &stats() const { return stats_; }

  private:
    friend class Campaign;
    std::vector<Job> jobs_;
    std::vector<JobResult> results_;
    CampaignStats stats_;
};

/** A declarative set of simulation jobs. */
class Campaign
{
  public:
    /** Append a job; returns its submission index. */
    std::size_t add(Job job);

    /** Convenience: append (workload, config [, tag [, CPA]]). */
    std::size_t add(const Workload &workload, const NamedConfig &config,
                    const std::string &tag = "", bool want_cpa = false);

    /** Cross-product convenience: every workload under every config. */
    void addCross(const std::vector<const Workload *> &workloads,
                  const std::vector<NamedConfig> &configs,
                  const std::string &tag = "");

    std::size_t size() const { return jobs_.size(); }
    const std::vector<Job> &jobs() const { return jobs_; }

    /**
     * Execute every job and return results in submission order.
     * May be called repeatedly (e.g. with more jobs added); with a
     * shared ResultCache, later runs hit the earlier runs' results.
     */
    CampaignResults run(const CampaignOptions &options = {}) const;

  private:
    std::vector<Job> jobs_;
};

/** Execute one job immediately on the calling thread (no cache). */
JobResult executeJob(const Job &job);

} // namespace reno::sweep
