#include "obs/profiler.hpp"

#include <algorithm>

namespace reno::obs
{

namespace
{

/** Power of two >= @p n (table size; probes use a bitmask). */
std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

/** splitmix64 finalizer: pcs are aligned, so mix the bits. */
std::uint64_t
hashPc(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

constexpr std::size_t MaxProbe = 16;

} // namespace

HotspotProfile::HotspotProfile(std::size_t slots)
    : slots_(roundUpPow2(slots < 64 ? 64 : slots)),
      mask_(slots_.size() - 1)
{
}

HotspotProfile::Slot *
HotspotProfile::find(Addr pc)
{
    std::size_t i = hashPc(pc) & mask_;
    for (std::size_t probe = 0; probe < MaxProbe; ++probe) {
        Slot &s = slots_[(i + probe) & mask_];
        if (s.used && s.pc == pc)
            return &s;
        if (!s.used) {
            s.used = true;
            s.pc = pc;
            ++occupied_;
            return &s;
        }
    }
    ++dropped_;
    return nullptr;
}

std::vector<HotspotProfile::Entry>
HotspotProfile::top(std::size_t n, bool by_stall) const
{
    std::vector<Entry> all;
    all.reserve(occupied_);
    for (const Slot &s : slots_) {
        if (!s.used)
            continue;
        if (by_stall ? s.stallCycles == 0 : s.retired == 0)
            continue;
        all.push_back(Entry{s.pc, s.retired, s.stallCycles});
    }
    auto key = [by_stall](const Entry &e) {
        return by_stall ? e.stallCycles : e.retired;
    };
    std::sort(all.begin(), all.end(),
              [&](const Entry &a, const Entry &b) {
                  if (key(a) != key(b))
                      return key(a) > key(b);
                  return a.pc < b.pc;
              });
    if (all.size() > n)
        all.resize(n);
    return all;
}

std::vector<HotspotProfile::Entry>
HotspotProfile::topByRetired(std::size_t n) const
{
    return top(n, false);
}

std::vector<HotspotProfile::Entry>
HotspotProfile::topByStall(std::size_t n) const
{
    return top(n, true);
}

} // namespace reno::obs
