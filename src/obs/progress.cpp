#include "obs/progress.hpp"

namespace reno::obs
{

ProgressMeter &
ProgressMeter::instance()
{
    static ProgressMeter meter;
    return meter;
}

void
ProgressMeter::enable(std::FILE *sink, Clock *clock,
                      std::uint64_t interval_ms)
{
    std::lock_guard<std::mutex> lock(mu_);
    sink_ = sink;
    clock_ = clock ? clock : &steadyClock();
    intervalMicros_ = interval_ms * 1000;
    startMicros_ = clock_->nowMicros();
    lastEmitMicros_ = 0;
    emittedOnce_ = false;
    total_ = done_ = failed_ = cacheHits_ = simulatedInsts_ = 0;
    enabled_.store(true, std::memory_order_relaxed);
}

void
ProgressMeter::finish()
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    emitLine(true);
    enabled_.store(false, std::memory_order_relaxed);
    sink_ = nullptr;
}

void
ProgressMeter::addTotal(std::uint64_t jobs)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    total_ += jobs;
}

void
ProgressMeter::jobDone(std::uint64_t insts, bool from_cache,
                       bool failed)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    ++done_;
    if (failed)
        ++failed_;
    if (from_cache)
        ++cacheHits_;
    simulatedInsts_ += insts;
    emitLine(false);
}

void
ProgressMeter::emitLine(bool force)
{
    if (!sink_)
        return;
    const std::uint64_t now = clock_->nowMicros();
    if (!force && emittedOnce_ &&
        now - lastEmitMicros_ < intervalMicros_)
        return;
    lastEmitMicros_ = now;
    emittedOnce_ = true;

    const double elapsed_s =
        static_cast<double>(now - startMicros_) / 1e6;
    // Rate and ETA are undefined on the first heartbeat (no elapsed
    // time, or no finished job to pace from). Emit JSON null, never
    // a division artifact (inf/nan breaks strict NDJSON parsers).
    char rate[32] = "null";
    if (elapsed_s > 0.0) {
        std::snprintf(rate, sizeof(rate), "%.3f",
                      static_cast<double>(simulatedInsts_) / 1e6 /
                          elapsed_s);
    }
    char eta[32] = "null";
    if (done_ > 0 && total_ >= done_) {
        std::snprintf(eta, sizeof(eta), "%.3f",
                      elapsed_s / static_cast<double>(done_) *
                          static_cast<double>(total_ - done_));
    }

    char line[256];
    std::snprintf(
        line, sizeof(line),
        "{\"elapsed_s\": %.3f, \"done\": %llu, \"total\": %llu, "
        "\"failed\": %llu, \"cache_hits\": %llu, "
        "\"simulated_insts\": %llu, \"minstr_per_s\": %s, "
        "\"eta_s\": %s}\n",
        elapsed_s, static_cast<unsigned long long>(done_),
        static_cast<unsigned long long>(total_),
        static_cast<unsigned long long>(failed_),
        static_cast<unsigned long long>(cacheHits_),
        static_cast<unsigned long long>(simulatedInsts_),
        rate, eta);
    std::fputs(line, sink_);
    std::fflush(sink_);
}

std::uint64_t
ProgressMeter::done() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return done_;
}

std::uint64_t
ProgressMeter::total() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
}

} // namespace reno::obs
