/**
 * @file
 * Bounded per-PC hotspot profiler.
 *
 * A fixed-size open-addressing hash table keyed by pc accumulates two
 * series per static instruction: retired-instruction counts (where the
 * work is) and commit-blocked stall cycles attributed to the ROB head
 * (where the time goes). The table never allocates after construction
 * and never grows: once full, new pcs land in a `dropped` counter, so
 * profiling a pathological workload degrades gracefully instead of
 * eating memory. Off by default (CpiAccounting::hotspotTopN == 0);
 * nothing on the simulated path changes when disabled.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace reno::obs
{

class HotspotProfile
{
  public:
    /** One profiled static instruction. */
    struct Entry {
        Addr pc = 0;
        std::uint64_t retired = 0;
        std::uint64_t stallCycles = 0;
    };

    explicit HotspotProfile(std::size_t slots = 8192);

    /** Count one retirement of @p pc. */
    void
    retire(Addr pc)
    {
        if (Slot *s = find(pc))
            ++s->retired;
    }

    /** Charge one commit-blocked cycle to the ROB head @p pc. */
    void
    stall(Addr pc)
    {
        if (Slot *s = find(pc))
            ++s->stallCycles;
    }

    /** Top @p n entries by retired count (desc, pc-asc tiebreak). */
    std::vector<Entry> topByRetired(std::size_t n) const;
    /** Top @p n entries by stall cycles (desc, pc-asc tiebreak). */
    std::vector<Entry> topByStall(std::size_t n) const;

    /** Events lost because the table was full. */
    std::uint64_t dropped() const { return dropped_; }
    /** Distinct pcs currently tracked. */
    std::size_t occupied() const { return occupied_; }

  private:
    struct Slot {
        Addr pc = 0;
        bool used = false;
        std::uint64_t retired = 0;
        std::uint64_t stallCycles = 0;
    };

    Slot *find(Addr pc);
    std::vector<Entry> top(std::size_t n, bool by_stall) const;

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::size_t occupied_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace reno::obs
