/**
 * @file
 * CLI front door for the observability layer. A driver parses the
 * standard obs flags out of argv (parseObsArgs / isObsFlag, the
 * campaign-engine idiom) and constructs one obs::Session for the
 * lifetime of the run:
 *
 *   --trace-out FILE     record a Chrome trace-event / Perfetto JSON
 *   --trace-sample N     + sample pipeline counters every N cycles
 *   --metrics-json FILE  write the metrics registry as JSON at exit
 *   --progress[=FILE]    stream NDJSON heartbeats (default: stderr)
 *   --cpi-stack          per-cycle CPI-stack accounting (obs/cpistack)
 *   --profile-hot[=N]    per-PC hotspot profiling, top N (default 20)
 *   --pipetrace[=FILE]   retired-instruction pipeline diagrams
 *                        (default: stderr)
 *
 * Construction enables the requested facilities; destruction flushes
 * them (final progress heartbeat, phase gauges folded into the
 * metrics registry, JSON files written). Everything defaults off, and
 * none of it perturbs simulated results: job digests, caching and
 * report output are byte-identical with the session active or not.
 */
#pragma once

#include <cstdio>
#include <string>

namespace reno::obs
{

/** Parsed obs flags (see file doc for the flag set). */
struct ObsOptions {
    std::string traceOut;     //!< --trace-out FILE ("" = off)
    std::uint64_t traceSampleCycles = 0;  //!< --trace-sample N
    std::string metricsJson;  //!< --metrics-json FILE ("" = off)
    bool progress = false;    //!< --progress[=FILE]
    std::string progressPath; //!< "" = stderr
    bool cpiStack = false;    //!< --cpi-stack
    unsigned profileHot = 0;  //!< --profile-hot[=N] top-N (0 = off)
    bool pipetrace = false;   //!< --pipetrace[=FILE]
    std::string pipetracePath;  //!< "" = stderr
};

/** Parse the obs flags out of argv; unrecognized args are ignored. */
ObsOptions parseObsArgs(int argc, char **argv);

/**
 * True if @p arg is an obs flag, so drivers with strict argument
 * parsing can skip them. Sets @p *takes_value when the flag consumes
 * the following argv entry (detached form).
 */
bool isObsFlag(const std::string &arg, bool *takes_value);

/** RAII activation of the facilities requested in ObsOptions. */
class Session
{
  public:
    explicit Session(const ObsOptions &opts);
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

  private:
    ObsOptions opts_;
    std::FILE *progressFile_ = nullptr;  //!< owned when non-null
    std::FILE *pipetraceFile_ = nullptr;  //!< owned when non-null
};

} // namespace reno::obs
