#include "obs/phase.hpp"

#include <algorithm>

namespace reno::obs
{

PhaseStats &
PhaseStats::instance()
{
    static PhaseStats stats;
    return stats;
}

void
PhaseStats::enable(Clock *clock)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        clock_ = clock ? clock : &steadyClock();
    }
    enabled_.store(true, std::memory_order_relaxed);
}

void
PhaseStats::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

Clock &
PhaseStats::clock()
{
    std::lock_guard<std::mutex> lock(mu_);
    return clock_ ? *clock_ : steadyClock();
}

void
PhaseStats::add(const std::string &phase, std::uint64_t micros,
                std::uint64_t insts)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[name, totals] : totals_) {
        if (name == phase) {
            totals.micros += micros;
            totals.insts += insts;
            ++totals.count;
            return;
        }
    }
    totals_.push_back({phase, PhaseTotals{micros, insts, 1}});
}

std::vector<std::pair<std::string, PhaseTotals>>
PhaseStats::snapshot() const
{
    std::vector<std::pair<std::string, PhaseTotals>> out;
    {
        std::lock_guard<std::mutex> lock(mu_);
        out = totals_;
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    return out;
}

void
PhaseStats::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    totals_.clear();
}

} // namespace reno::obs
