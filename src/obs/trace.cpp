#include "obs/trace.hpp"

#include <cstdio>

#include "common/log.hpp"
#include "common/report.hpp"

namespace reno::obs
{

TraceArgs &
TraceArgs::add(const char *key, const std::string &value)
{
    if (!body_.empty())
        body_ += ", ";
    body_ += strprintf("\"%s\": \"%s\"", key,
                       jsonEscape(value).c_str());
    return *this;
}

TraceArgs &
TraceArgs::add(const char *key, const char *value)
{
    return add(key, std::string(value));
}

TraceArgs &
TraceArgs::add(const char *key, std::uint64_t value)
{
    if (!body_.empty())
        body_ += ", ";
    body_ += strprintf("\"%s\": %llu", key,
                       static_cast<unsigned long long>(value));
    return *this;
}

TraceArgs &
TraceArgs::add(const char *key, double value)
{
    if (!body_.empty())
        body_ += ", ";
    body_ += strprintf("\"%s\": %.6f", key, value);
    return *this;
}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::start(Clock *clock)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        clock_ = clock ? clock : &steadyClock();
    }
    enabled_.store(true, std::memory_order_relaxed);
}

void
Tracer::stop()
{
    enabled_.store(false, std::memory_order_relaxed);
}

std::uint64_t
Tracer::nowMicros()
{
    Clock *clock;
    {
        std::lock_guard<std::mutex> lock(mu_);
        clock = clock_;
    }
    return clock ? clock->nowMicros() : steadyClock().nowMicros();
}

std::uint32_t
Tracer::currentThreadId()
{
    static std::atomic<std::uint32_t> next{1};
    thread_local const std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

void
Tracer::record(TraceEvent event, bool force)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!force && !enabled_.load(std::memory_order_relaxed))
        return;
    events_.push_back(std::move(event));
}

void
Tracer::begin(std::string name, std::string cat, std::string args)
{
    TraceEvent e;
    e.ph = TraceEvent::Phase::Begin;
    e.tid = currentThreadId();
    e.ts = nowMicros();
    e.name = std::move(name);
    e.cat = std::move(cat);
    e.args = std::move(args);
    record(std::move(e));
}

void
Tracer::end(std::string name, std::string cat)
{
    TraceEvent e;
    e.ph = TraceEvent::Phase::End;
    e.tid = currentThreadId();
    e.ts = nowMicros();
    e.name = std::move(name);
    e.cat = std::move(cat);
    // Force: a span that recorded its "B" must record its "E" even if
    // the tracer was stopped mid-span, so nesting stays well-formed.
    record(std::move(e), true);
}

void
Tracer::instant(std::string name, std::string cat, std::string args)
{
    TraceEvent e;
    e.ph = TraceEvent::Phase::Instant;
    e.tid = currentThreadId();
    e.ts = nowMicros();
    e.name = std::move(name);
    e.cat = std::move(cat);
    e.args = std::move(args);
    record(std::move(e));
}

void
Tracer::counter(std::string name, std::string args)
{
    TraceEvent e;
    e.ph = TraceEvent::Phase::Counter;
    e.tid = currentThreadId();
    e.ts = nowMicros();
    e.name = std::move(name);
    e.cat = "counter";
    e.args = std::move(args);
    record(std::move(e));
}

void
Tracer::threadName(std::string name)
{
    TraceEvent e;
    e.ph = TraceEvent::Phase::Meta;
    e.tid = currentThreadId();
    e.ts = 0;
    e.name = "thread_name";
    e.args = TraceArgs().add("name", name).str();
    record(std::move(e));
}

std::size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
}

std::string
Tracer::renderJson() const
{
    const std::vector<TraceEvent> events = this->events();
    std::string out = "{\"traceEvents\": [\n";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &e = events[i];
        out += strprintf(
            "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%c\", "
            "\"pid\": 1, \"tid\": %u, \"ts\": %llu",
            jsonEscape(e.name).c_str(), jsonEscape(e.cat).c_str(),
            static_cast<char>(e.ph), e.tid,
            static_cast<unsigned long long>(e.ts));
        if (e.ph == TraceEvent::Phase::Instant)
            out += ", \"s\": \"t\"";
        if (!e.args.empty())
            out += ", \"args\": {" + e.args + "}";
        out += "}";
        if (i + 1 < events.size())
            out += ",";
        out += "\n";
    }
    out += "], \"displayTimeUnit\": \"ms\"}\n";
    return out;
}

bool
Tracer::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("tracer: cannot write '%s'", path.c_str());
        return false;
    }
    const std::string json = renderJson();
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    std::fclose(f);
    if (!ok)
        warn("tracer: short write to '%s'", path.c_str());
    return ok;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
}

} // namespace reno::obs
