/**
 * @file
 * Wall-clock phase accounting for sampled and full simulation:
 * a PhaseSpan brackets one leaf phase of work -- fast-forward
 * (functional warming), checkpoint restore/capture, detailed warmup,
 * a measured window, a full detailed run -- and, per enabled
 * facility,
 *
 *   - emits a begin/end span to the event tracer (obs/trace.hpp), so
 *     traces show where inside each job the time went, and
 *   - accumulates elapsed microseconds + executed instructions into
 *     the process-wide PhaseStats totals, which back the
 *     `reno-sample --perf-json` phase breakdown and the per-phase
 *     instructions/sec gauges of --metrics-json.
 *
 * Phases are leaves by convention: no PhaseSpan nests inside another,
 * so the per-phase totals are disjoint and sum to (roughly) the
 * simulation wall clock. Both facilities default off; a disabled
 * PhaseSpan costs two relaxed atomic loads.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "obs/trace.hpp"

namespace reno::obs
{

/** Aggregated wall-clock totals of one phase. */
struct PhaseTotals {
    std::uint64_t micros = 0;
    std::uint64_t insts = 0;
    std::uint64_t count = 0;  //!< spans accumulated

    double
    instsPerSec() const
    {
        return micros ? static_cast<double>(insts) /
                            (static_cast<double>(micros) / 1e6)
                      : 0.0;
    }
};

/** Process-wide per-phase wall-clock totals. */
class PhaseStats
{
  public:
    static PhaseStats &instance();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Start accumulating. @p clock defaults to the steady clock. */
    void enable(Clock *clock = nullptr);
    void disable();

    void add(const std::string &phase, std::uint64_t micros,
             std::uint64_t insts);

    /** (phase, totals) pairs, sorted by phase name. */
    std::vector<std::pair<std::string, PhaseTotals>> snapshot() const;

    void reset();

    Clock &clock();

  private:
    PhaseStats() = default;

    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    Clock *clock_ = nullptr;
    std::vector<std::pair<std::string, PhaseTotals>> totals_;
};

/** RAII leaf-phase span: traces and/or accumulates (see file doc). */
class PhaseSpan
{
  public:
    explicit PhaseSpan(const char *name, std::string trace_args = "")
        : name_(name)
    {
        trace_ = Tracer::instance().enabled();
        accumulate_ = PhaseStats::instance().enabled();
        if (trace_)
            Tracer::instance().begin(name_, "phase",
                                     std::move(trace_args));
        if (accumulate_)
            t0_ = PhaseStats::instance().clock().nowMicros();
    }

    ~PhaseSpan()
    {
        if (trace_)
            Tracer::instance().end(name_, "phase");
        if (accumulate_) {
            const std::uint64_t t1 =
                PhaseStats::instance().clock().nowMicros();
            PhaseStats::instance().add(name_, t1 - t0_, insts_);
        }
    }

    PhaseSpan(const PhaseSpan &) = delete;
    PhaseSpan &operator=(const PhaseSpan &) = delete;

    /** Attribute @p n executed instructions to this phase. */
    void setInsts(std::uint64_t n) { insts_ = n; }

  private:
    std::string name_;
    std::uint64_t t0_ = 0;
    std::uint64_t insts_ = 0;
    bool trace_ = false;
    bool accumulate_ = false;
};

} // namespace reno::obs
