#include "obs/session.hpp"

#include <cstdlib>

#include "common/log.hpp"
#include "obs/cpistack.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "trace/pipetrace.hpp"

namespace reno::obs
{

ObsOptions
parseObsArgs(int argc, char **argv)
{
    ObsOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            const std::string prefix = std::string(flag) + "=";
            if (arg.rfind(prefix, 0) == 0)
                return arg.substr(prefix.size());
            if (arg == flag && i + 1 < argc)
                return argv[++i];
            return "";
        };
        if (arg == "--trace-out" ||
            arg.rfind("--trace-out=", 0) == 0) {
            opts.traceOut = value("--trace-out");
            if (opts.traceOut.empty())
                fatal("--trace-out expects a file path");
        } else if (arg == "--trace-sample" ||
                   arg.rfind("--trace-sample=", 0) == 0) {
            const std::string v = value("--trace-sample");
            const long long n = std::strtoll(v.c_str(), nullptr, 10);
            if (n >= 1)
                opts.traceSampleCycles = std::uint64_t(n);
            else
                fatal("--trace-sample expects a positive cycle "
                      "count, got '%s'",
                      v.c_str());
        } else if (arg == "--metrics-json" ||
                   arg.rfind("--metrics-json=", 0) == 0) {
            opts.metricsJson = value("--metrics-json");
            if (opts.metricsJson.empty())
                fatal("--metrics-json expects a file path");
        } else if (arg == "--progress") {
            opts.progress = true;
        } else if (arg.rfind("--progress=", 0) == 0) {
            opts.progress = true;
            opts.progressPath =
                arg.substr(std::string("--progress=").size());
            if (opts.progressPath.empty())
                fatal("--progress= expects a file path");
        } else if (arg == "--cpi-stack") {
            opts.cpiStack = true;
        } else if (arg == "--profile-hot") {
            opts.profileHot = 20;
        } else if (arg.rfind("--profile-hot=", 0) == 0) {
            const std::string v =
                arg.substr(std::string("--profile-hot=").size());
            const long long n = std::strtoll(v.c_str(), nullptr, 10);
            if (n >= 1)
                opts.profileHot = static_cast<unsigned>(n);
            else
                fatal("--profile-hot= expects a positive top-N, "
                      "got '%s'",
                      v.c_str());
        } else if (arg == "--pipetrace") {
            opts.pipetrace = true;
        } else if (arg.rfind("--pipetrace=", 0) == 0) {
            opts.pipetrace = true;
            opts.pipetracePath =
                arg.substr(std::string("--pipetrace=").size());
            if (opts.pipetracePath.empty())
                fatal("--pipetrace= expects a file path");
        }
    }
    if (opts.traceSampleCycles && opts.traceOut.empty())
        fatal("--trace-sample requires --trace-out");
    return opts;
}

bool
isObsFlag(const std::string &arg, bool *takes_value)
{
    *takes_value = false;
    if (arg == "--trace-out" || arg == "--trace-sample" ||
        arg == "--metrics-json") {
        *takes_value = true;
        return true;
    }
    return arg == "--progress" || arg == "--cpi-stack" ||
           arg == "--profile-hot" || arg == "--pipetrace" ||
           arg.rfind("--trace-out=", 0) == 0 ||
           arg.rfind("--trace-sample=", 0) == 0 ||
           arg.rfind("--metrics-json=", 0) == 0 ||
           arg.rfind("--progress=", 0) == 0 ||
           arg.rfind("--profile-hot=", 0) == 0 ||
           arg.rfind("--pipetrace=", 0) == 0;
}

Session::Session(const ObsOptions &opts) : opts_(opts)
{
    if (!opts_.traceOut.empty()) {
        Tracer::instance().setCycleSampleInterval(
            opts_.traceSampleCycles);
        Tracer::instance().start();
        Tracer::instance().threadName("main");
    }
    if (!opts_.metricsJson.empty())
        PhaseStats::instance().enable();
    if (opts_.progress) {
        std::FILE *sink = stderr;
        if (!opts_.progressPath.empty()) {
            progressFile_ =
                std::fopen(opts_.progressPath.c_str(), "w");
            if (!progressFile_)
                fatal("--progress: cannot write '%s'",
                      opts_.progressPath.c_str());
            sink = progressFile_;
        }
        ProgressMeter::instance().enable(sink);
    }
    if (opts_.cpiStack)
        CpiAccounting::instance().setStackEnabled(true);
    if (opts_.profileHot > 0)
        CpiAccounting::instance().setHotspotTopN(opts_.profileHot);
    if (opts_.pipetrace) {
        std::FILE *sink = stderr;
        if (!opts_.pipetracePath.empty()) {
            pipetraceFile_ =
                std::fopen(opts_.pipetracePath.c_str(), "w");
            if (!pipetraceFile_)
                fatal("--pipetrace: cannot write '%s'",
                      opts_.pipetracePath.c_str());
            sink = pipetraceFile_;
        }
        PipeTraceSink::instance().enable(sink);
    }
}

Session::~Session()
{
    if (opts_.pipetrace) {
        PipeTraceSink::instance().disable();
        if (pipetraceFile_)
            std::fclose(pipetraceFile_);
    }
    if (opts_.cpiStack)
        CpiAccounting::instance().setStackEnabled(false);
    if (opts_.profileHot > 0)
        CpiAccounting::instance().setHotspotTopN(0);
    if (opts_.progress) {
        ProgressMeter::instance().finish();
        if (progressFile_)
            std::fclose(progressFile_);
    }
    if (!opts_.metricsJson.empty()) {
        // Fold the phase totals into gauges so one JSON document
        // carries both engine metrics and the phase breakdown.
        auto &registry = MetricsRegistry::instance();
        for (const auto &[phase, totals] :
             PhaseStats::instance().snapshot()) {
            registry.gauge(strprintf("phase.%s.seconds",
                                     phase.c_str()))
                .set(static_cast<double>(totals.micros) / 1e6);
            registry.gauge(strprintf("phase.%s.minstr_per_s",
                                     phase.c_str()))
                .set(totals.instsPerSec() / 1e6);
        }
        registry.writeJson(opts_.metricsJson);
    }
    if (!opts_.traceOut.empty()) {
        Tracer::instance().stop();
        Tracer::instance().writeJson(opts_.traceOut);
        Tracer::instance().clear();
        Tracer::instance().setCycleSampleInterval(0);
    }
}

} // namespace reno::obs
