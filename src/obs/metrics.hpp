/**
 * @file
 * Process-wide metrics registry: named counters (monotonic),
 * gauges (last-written value) and histograms (full-value reservoir
 * with count/min/mean/p50/p95/p99/max), serialized as one JSON document
 * (reno-sweep / reno-sample --metrics-json).
 *
 * The registry complements StatSet (common/statset.hpp): StatSet
 * counts *simulated* events inside one core, deterministically;
 * MetricsRegistry records *host-side* behavior of the campaign engine
 * -- job latency, queue wait, pool utilization, cache hit ratio --
 * which is wall-clock-dependent and therefore kept strictly out of
 * every deterministic report.
 *
 * Handed-out metric references are stable for the registry's
 * lifetime (deque storage, the StatSet idiom); recording is a relaxed
 * atomic add (counter/gauge) or a short mutex hold (histogram).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace reno::obs
{

/** Monotonic event counter. */
class Counter
{
  public:
    void
    inc(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written instantaneous value. */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/** Full-value reservoir with rank-based percentiles. */
class Histogram
{
  public:
    void record(double v);

    std::uint64_t count() const;
    double min() const;
    double max() const;
    double mean() const;
    /** Nearest-rank percentile, @p p in (0, 100]. 0 when empty. */
    double percentile(double p) const;

  private:
    mutable std::mutex mu_;
    std::vector<double> values_;
};

/** The process-wide named-metric registry. */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    /** Register (or re-fetch) a metric. A name is bound to one kind;
     *  re-requesting it as another kind is a fatal() error. */
    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name);

    /** One JSON document: {"counters": {...}, "gauges": {...},
     *  "histograms": {...}}, names sorted, trailing newline. */
    std::string renderJson() const;

    /** renderJson() to a file; false (with a warning) on failure. */
    bool writeJson(const std::string &path) const;

    /** Drop every metric (tests). Invalidates handed-out refs. */
    void reset();

  private:
    MetricsRegistry() = default;

    mutable std::mutex mu_;
    std::deque<Counter> counters_;
    std::deque<Gauge> gauges_;
    std::deque<Histogram> histograms_;
    std::map<std::string, Counter *, std::less<>> counterIndex_;
    std::map<std::string, Gauge *, std::less<>> gaugeIndex_;
    std::map<std::string, Histogram *, std::less<>> histogramIndex_;
};

} // namespace reno::obs
