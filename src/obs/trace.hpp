/**
 * @file
 * Process-wide structured event tracer emitting Chrome trace-event /
 * Perfetto-compatible JSON ({"traceEvents": [...]}; load the file at
 * ui.perfetto.dev or chrome://tracing).
 *
 * The tracer records begin/end span pairs ("B"/"E") per thread,
 * instant events ("i"), counter time-series ("C") and thread-name
 * metadata ("M"). It is off by default: every recording call is
 * guarded by an inlined relaxed-atomic enabled() check, so a disabled
 * tracer costs one predictable branch -- nothing on the simulated
 * path ever changes, the tracer observes wall-clock structure only.
 *
 * Timestamps come from a Clock (common/clock.hpp): the steady clock
 * in production, a ManualClock in tests, so trace tests assert exact
 * deterministic timestamps.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"

namespace reno::obs
{

/** One recorded event (Chrome trace-event model). */
struct TraceEvent {
    enum class Phase : char {
        Begin = 'B',
        End = 'E',
        Counter = 'C',
        Instant = 'i',
        Meta = 'M',
    };
    Phase ph = Phase::Instant;
    std::uint32_t tid = 0;
    std::uint64_t ts = 0;       //!< microseconds
    std::string name;
    std::string cat;
    std::string args;  //!< pre-rendered JSON object body (no braces)
};

/** Fluent builder for an event's "args" JSON object body. */
class TraceArgs
{
  public:
    TraceArgs &add(const char *key, const std::string &value);
    TraceArgs &add(const char *key, const char *value);
    TraceArgs &add(const char *key, std::uint64_t value);
    TraceArgs &add(const char *key, double value);

    std::string str() const { return body_; }

  private:
    std::string body_;
};

/** The process-wide event tracer. */
class Tracer
{
  public:
    static Tracer &instance();

    /** Disabled-path check; inlined, one relaxed atomic load. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Start recording. @p clock defaults to the steady clock. */
    void start(Clock *clock = nullptr);

    /** Stop recording (events stay buffered until clear()). */
    void stop();

    void begin(std::string name, std::string cat,
               std::string args = "");
    void end(std::string name, std::string cat);
    void instant(std::string name, std::string cat,
                 std::string args = "");
    /** Counter sample: @p args carries the series values. */
    void counter(std::string name, std::string args);
    /** Name the calling thread in trace viewers. */
    void threadName(std::string name);

    /**
     * Periodic StatSet counter sampling: when non-zero (and the
     * tracer is enabled), Core::runUntilRetired emits every pipeline
     * counter as a trace counter series every N simulated cycles.
     */
    std::uint64_t
    cycleSampleInterval() const
    {
        return cycleInterval_.load(std::memory_order_relaxed);
    }
    void
    setCycleSampleInterval(std::uint64_t cycles)
    {
        cycleInterval_.store(cycles, std::memory_order_relaxed);
    }

    /** Current time on the tracer's clock. */
    std::uint64_t nowMicros();

    /** Small stable id of the calling thread (assigned on first use). */
    static std::uint32_t currentThreadId();

    std::size_t eventCount() const;
    std::vector<TraceEvent> events() const;

    /** Render the whole buffer as Chrome trace-event JSON. */
    std::string renderJson() const;

    /** renderJson() to a file; false (with a warning) on I/O failure. */
    bool writeJson(const std::string &path) const;

    /** Drop every buffered event. */
    void clear();

  private:
    Tracer() = default;

    void record(TraceEvent event, bool force = false);

    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> cycleInterval_{0};
    mutable std::mutex mu_;
    Clock *clock_ = nullptr;
    std::vector<TraceEvent> events_;
};

/**
 * RAII begin/end span. Captures enabled() once at construction, so a
 * span opened while tracing is on always closes its "B" event.
 */
class TraceSpan
{
  public:
    TraceSpan(std::string name, std::string cat,
              std::string args = "")
        : name_(std::move(name)), cat_(std::move(cat))
    {
        if (Tracer::instance().enabled()) {
            active_ = true;
            Tracer::instance().begin(name_, cat_, std::move(args));
        }
    }

    ~TraceSpan()
    {
        if (active_)
            Tracer::instance().end(std::move(name_), std::move(cat_));
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    std::string name_;
    std::string cat_;
    bool active_ = false;
};

} // namespace reno::obs
