/**
 * @file
 * Campaign-facing CPI-stack artifacts: the per-run report harvested
 * from a Core/System after simulation, and the renderers behind
 * `reno-sweep --cpi-json/--cpi-html` and `reno-sample --cpi-json`.
 *
 * The report is a side channel next to SimResult -- never serialized
 * into the result cache (cache-hit jobs come back with valid=false),
 * never rendered into the standard reports -- so every golden stays
 * byte-identical whether accounting is on or off.
 */
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/cpistack.hpp"
#include "obs/profiler.hpp"

namespace reno::obs
{

/** Everything CPI accounting learned about one simulation. */
struct CpiReport {
    bool valid = false;  //!< false: accounting was off (or cache hit)
    CpiStack machine;    //!< sum over cores; total() == sum of cycles
    /** Per-core stacks (one entry on a single core); each sums to
     *  that core's own cycle count. */
    std::vector<CpiStack> perCore;
    std::vector<HotspotProfile::Entry> hotRetired;
    std::vector<HotspotProfile::Entry> hotStall;
    std::uint64_t hotspotDropped = 0;
};

/** One (workload, config) row of a campaign CPI artifact. */
struct CpiRow {
    std::string workload;
    std::string config;
    unsigned cores = 1;
    CpiReport report;
};

/**
 * Deterministic JSON artifact: bucket names, one object per job
 * (stack + per-core stacks + hotspot tables, each stack carrying its
 * own "cycles" total so the sum-to-cycles identity is checkable from
 * the file alone), and the campaign-wide aggregate stack.
 */
std::string renderCpiJson(const std::vector<CpiRow> &rows);

/**
 * Self-contained HTML report (inline CSS, no scripts): a stacked
 * cycle-accounting bar per (workload, config) plus the hotspot table
 * of every profiled job.
 */
std::string renderCpiHtml(const std::vector<CpiRow> &rows);

/** One sampled-estimate row (`reno-sample --cpi-json`). */
struct SampledCpiRow {
    std::string workload;
    std::string config;
    unsigned cores = 1;
    /** Extrapolated whole-program cycles per bucket (same estimator
     *  as the sampled IPC; fractional by nature). */
    std::array<double, NumCpiBuckets> est{};
};

/** JSON artifact for extrapolated sampled stacks. */
std::string renderSampledCpiJson(const std::vector<SampledCpiRow> &rows);

} // namespace reno::obs
