#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/log.hpp"
#include "common/report.hpp"

namespace reno::obs
{

void
Histogram::record(double v)
{
    std::lock_guard<std::mutex> lock(mu_);
    values_.push_back(v);
}

std::uint64_t
Histogram::count() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return values_.size();
}

double
Histogram::min() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return values_.empty()
               ? 0.0
               : *std::min_element(values_.begin(), values_.end());
}

double
Histogram::max() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return values_.empty()
               ? 0.0
               : *std::max_element(values_.begin(), values_.end());
}

double
Histogram::mean() const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (values_.empty())
        return 0.0;
    double sum = 0.0;
    for (const double v : values_)
        sum += v;
    return sum / static_cast<double>(values_.size());
}

double
Histogram::percentile(double p) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (values_.empty())
        return 0.0;
    std::vector<double> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t rank = static_cast<std::size_t>(std::ceil(
        p / 100.0 * static_cast<double>(sorted.size())));
    return sorted[std::min(rank > 0 ? rank - 1 : 0,
                           sorted.size() - 1)];
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

namespace
{

template <typename Index>
void
checkNameFree(const char *kind, std::string_view name,
              const Index &index)
{
    if (index.find(name) != index.end())
        fatal("metric '%s' already registered as a %s",
              std::string(name).c_str(), kind);
}

} // namespace

Counter &
MetricsRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counterIndex_.find(name);
    if (it != counterIndex_.end())
        return *it->second;
    checkNameFree("gauge", name, gaugeIndex_);
    checkNameFree("histogram", name, histogramIndex_);
    counters_.emplace_back();
    counterIndex_.emplace(std::string(name), &counters_.back());
    return counters_.back();
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = gaugeIndex_.find(name);
    if (it != gaugeIndex_.end())
        return *it->second;
    checkNameFree("counter", name, counterIndex_);
    checkNameFree("histogram", name, histogramIndex_);
    gauges_.emplace_back();
    gaugeIndex_.emplace(std::string(name), &gauges_.back());
    return gauges_.back();
}

Histogram &
MetricsRegistry::histogram(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histogramIndex_.find(name);
    if (it != histogramIndex_.end())
        return *it->second;
    checkNameFree("counter", name, counterIndex_);
    checkNameFree("gauge", name, gaugeIndex_);
    histograms_.emplace_back();
    histogramIndex_.emplace(std::string(name), &histograms_.back());
    return histograms_.back();
}

std::string
MetricsRegistry::renderJson() const
{
    // Snapshot the indices under the lock, then read the metrics
    // through their own synchronization.
    std::vector<std::pair<std::string, const Counter *>> counters;
    std::vector<std::pair<std::string, const Gauge *>> gauges;
    std::vector<std::pair<std::string, const Histogram *>> histograms;
    {
        std::lock_guard<std::mutex> lock(mu_);
        counters.assign(counterIndex_.begin(), counterIndex_.end());
        gauges.assign(gaugeIndex_.begin(), gaugeIndex_.end());
        histograms.assign(histogramIndex_.begin(),
                          histogramIndex_.end());
    }

    std::string out = "{\n  \"counters\": {";
    for (std::size_t i = 0; i < counters.size(); ++i) {
        out += strprintf(
            "%s\n    \"%s\": %llu", i ? "," : "",
            jsonEscape(counters[i].first).c_str(),
            static_cast<unsigned long long>(
                counters[i].second->value()));
    }
    out += counters.empty() ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
        out += strprintf("%s\n    \"%s\": %.6f", i ? "," : "",
                         jsonEscape(gauges[i].first).c_str(),
                         gauges[i].second->value());
    }
    out += gauges.empty() ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    for (std::size_t i = 0; i < histograms.size(); ++i) {
        const Histogram &h = *histograms[i].second;
        out += strprintf(
            "%s\n    \"%s\": {\"count\": %llu, \"min\": %.6f, "
            "\"mean\": %.6f, \"p50\": %.6f, \"p95\": %.6f, "
            "\"p99\": %.6f, \"max\": %.6f}",
            i ? "," : "", jsonEscape(histograms[i].first).c_str(),
            static_cast<unsigned long long>(h.count()), h.min(),
            h.mean(), h.percentile(50.0), h.percentile(95.0),
            h.percentile(99.0), h.max());
    }
    out += histograms.empty() ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

bool
MetricsRegistry::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("metrics: cannot write '%s'", path.c_str());
        return false;
    }
    const std::string json = renderJson();
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    std::fclose(f);
    if (!ok)
        warn("metrics: short write to '%s'", path.c_str());
    return ok;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    counterIndex_.clear();
    gaugeIndex_.clear();
    histogramIndex_.clear();
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

} // namespace reno::obs
