/**
 * @file
 * Live campaign progress as an NDJSON heartbeat stream
 * (reno-sweep / reno-sample --progress[=FILE]).
 *
 * The campaign engine reports totals and per-job completions; the
 * meter emits one JSON object per line, rate-limited to one heartbeat
 * per interval (plus a final line at finish()), so a dashboard -- or
 * `tail -f` -- can follow a long sweep without scraping stderr:
 *
 *   {"elapsed_s": 12.5, "done": 40, "total": 128, "failed": 0,
 *    "cache_hits": 12, "simulated_insts": 4000000,
 *    "minstr_per_s": 3.2, "eta_s": 27.5}
 *
 * minstr_per_s and eta_s are JSON null while undefined (first
 * heartbeat with no elapsed time, or no finished job to pace from),
 * so every line is strictly parseable -- never inf/nan.
 *
 * Lines are written under one mutex with a single fputs + fflush, so
 * concurrent pool workers never interleave partial lines. Disabled
 * (the default), jobDone() is one relaxed atomic load.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>

#include "common/clock.hpp"

namespace reno::obs
{

/** Process-wide campaign progress meter. */
class ProgressMeter
{
  public:
    static ProgressMeter &instance();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Start heartbeating to @p sink (not owned; stderr or an opened
     * file). @p clock defaults to the steady clock; @p interval_ms
     * is the minimum spacing between heartbeats (0 = every event,
     * which tests use with a ManualClock).
     */
    void enable(std::FILE *sink, Clock *clock = nullptr,
                std::uint64_t interval_ms = 500);

    /** Emit a final heartbeat and stop. Idempotent. */
    void finish();

    /** Grow the expected job total (before or during a run). */
    void addTotal(std::uint64_t jobs);

    /**
     * Record one finished job. @p insts counts simulated instructions
     * (0 for cache hits); cache hits and failures are tallied
     * separately so the stream distinguishes fresh work from replay.
     * On a multi-core job @p insts must be the AGGREGATE retired
     * count over every core (SimResult::retired of a System run
     * already is), so minstr_per_s and eta_s track total simulation
     * work, not core 0's share.
     */
    void jobDone(std::uint64_t insts, bool from_cache,
                 bool failed = false);

    std::uint64_t done() const;
    std::uint64_t total() const;

  private:
    ProgressMeter() = default;

    void emitLine(bool force);

    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    std::FILE *sink_ = nullptr;
    Clock *clock_ = nullptr;
    std::uint64_t intervalMicros_ = 0;
    std::uint64_t startMicros_ = 0;
    std::uint64_t lastEmitMicros_ = 0;
    bool emittedOnce_ = false;

    std::uint64_t total_ = 0;
    std::uint64_t done_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t cacheHits_ = 0;
    std::uint64_t simulatedInsts_ = 0;
};

} // namespace reno::obs
