#include "obs/cpistack.hpp"

namespace reno::obs
{

const char *
cpiBucketName(CpiBucket b)
{
    switch (b) {
      case CpiBucket::Base: return "base";
      case CpiBucket::FrontIcache: return "frontend.icache";
      case CpiBucket::FrontBpred: return "frontend.bpred";
      case CpiBucket::BackRob: return "backend.rob";
      case CpiBucket::BackIq: return "backend.iq";
      case CpiBucket::BackPregs: return "backend.pregs";
      case CpiBucket::BackLsq: return "backend.lsq";
      case CpiBucket::BackDcacheL1: return "backend.dcache.l1";
      case CpiBucket::BackDcacheL2: return "backend.dcache.l2";
      case CpiBucket::BackDcacheMem: return "backend.dcache.mem";
      case CpiBucket::BackCoherence: return "backend.coherence";
      case CpiBucket::Drain: return "drain";
    }
    return "?";
}

CpiAccounting &
CpiAccounting::instance()
{
    static CpiAccounting acc;
    return acc;
}

} // namespace reno::obs
