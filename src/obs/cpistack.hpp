/**
 * @file
 * Hierarchical CPI-stack cycle accounting.
 *
 * Every commit-stage tick is classified into exactly one bucket of an
 * exhaustive, mutually exclusive tree:
 *
 *   base                     committed >= 1 instruction this cycle
 *   frontend.icache          ROB empty, fetch waiting on the I-cache
 *   frontend.bpred           ROB empty behind a mispredict redirect
 *   backend.rob              head renamed+issued, draining exec latency,
 *                            or rename blocked on a full ROB
 *   backend.iq               head waiting to issue (or rename blocked
 *                            on a full issue queue)
 *   backend.pregs            rename blocked on free physical registers
 *   backend.lsq              head blocked on a memory dependence, a
 *                            store draining, or rename blocked on a
 *                            full LQ/SQ
 *   backend.dcache.l1        head is a load serviced by the L1 / a
 *                            forwarding store (port + hit latency)
 *   backend.dcache.l2        head is a load serviced by a shared level
 *   backend.dcache.mem       head is a load serviced by memory
 *   backend.coherence        head is a load delayed by the MESI bus
 *   drain                    retire-port vortex, squash refill,
 *                            startup/finish bubbles
 *
 * The accountant increments exactly one bucket per CommitStage::tick,
 * and Core::tick calls the commit stage exactly once per cycle, so
 *
 *   sum(buckets) == cycles   (per core, by construction).
 *
 * Like the Tracer, accounting is off by default (one relaxed-atomic
 * check at Core construction); SimResult and every digest/golden are
 * untouched, so result caching stays byte-identical either way.
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace reno::obs
{

/** One leaf of the CPI-stack tree. Keep in sync with cpiBucketName. */
enum class CpiBucket : std::uint8_t {
    Base,
    FrontIcache,
    FrontBpred,
    BackRob,
    BackIq,
    BackPregs,
    BackLsq,
    BackDcacheL1,
    BackDcacheL2,
    BackDcacheMem,
    BackCoherence,
    Drain,
};

inline constexpr std::size_t NumCpiBuckets = 12;

/** Dotted hierarchical name ("backend.dcache.l2") of a bucket. */
const char *cpiBucketName(CpiBucket b);

/** Per-core (or whole-machine) bucket totals. POD; copy freely. */
struct CpiStack {
    std::array<std::uint64_t, NumCpiBuckets> cycles{};

    void
    inc(CpiBucket b)
    {
        ++cycles[static_cast<std::size_t>(b)];
    }

    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (std::uint64_t c : cycles)
            sum += c;
        return sum;
    }

    std::uint64_t
    get(CpiBucket b) const
    {
        return cycles[static_cast<std::size_t>(b)];
    }

    /** This stack minus an earlier snapshot (interval accounting). */
    CpiStack
    delta(const CpiStack &pre) const
    {
        CpiStack d;
        for (std::size_t i = 0; i < NumCpiBuckets; ++i)
            d.cycles[i] = cycles[i] - pre.cycles[i];
        return d;
    }

    /** Accumulate another stack (per-core -> whole-machine). */
    void
    accumulate(const CpiStack &add)
    {
        for (std::size_t i = 0; i < NumCpiBuckets; ++i)
            cycles[i] += add.cycles[i];
    }
};

/**
 * Process-wide switchboard for CPI accounting and hotspot profiling
 * (the Tracer idiom: relaxed atomics, off by default). Cores check it
 * once at construction, so toggles apply to cores built afterwards.
 */
class CpiAccounting
{
  public:
    static CpiAccounting &instance();

    bool
    stackEnabled() const
    {
        return stack_.load(std::memory_order_relaxed);
    }
    void
    setStackEnabled(bool on)
    {
        stack_.store(on, std::memory_order_relaxed);
    }

    /** Hotspot-profiler top-N (0 = profiling off). */
    unsigned
    hotspotTopN() const
    {
        return hotTopN_.load(std::memory_order_relaxed);
    }
    void
    setHotspotTopN(unsigned n)
    {
        hotTopN_.store(n, std::memory_order_relaxed);
    }

  private:
    CpiAccounting() = default;

    std::atomic<bool> stack_{false};
    std::atomic<unsigned> hotTopN_{0};
};

} // namespace reno::obs
