#include "obs/cpireport.hpp"

#include "common/log.hpp"
#include "common/report.hpp"

namespace reno::obs
{

namespace
{

void
appendStack(std::string &out, const CpiStack &stack,
            const char *indent)
{
    out += "{";
    for (std::size_t i = 0; i < NumCpiBuckets; ++i) {
        out += strprintf(
            "%s\n%s  \"%s\": %llu", i ? "," : "", indent,
            cpiBucketName(static_cast<CpiBucket>(i)),
            static_cast<unsigned long long>(stack.cycles[i]));
    }
    out += strprintf("\n%s}", indent);
}

void
appendHotTable(std::string &out,
               const std::vector<HotspotProfile::Entry> &entries,
               const char *indent)
{
    out += "[";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const HotspotProfile::Entry &e = entries[i];
        out += strprintf(
            "%s\n%s  {\"pc\": \"0x%llx\", \"retired\": %llu, "
            "\"stall_cycles\": %llu}",
            i ? "," : "", indent,
            static_cast<unsigned long long>(e.pc),
            static_cast<unsigned long long>(e.retired),
            static_cast<unsigned long long>(e.stallCycles));
    }
    out += entries.empty() ? "]" : strprintf("\n%s]", indent);
}

/** Fixed color per bucket (stable across reports; colorblind-safe
 *  Okabe-Ito base extended with shades for the dcache sublevels). */
const char *
bucketColor(CpiBucket b)
{
    switch (b) {
      case CpiBucket::Base: return "#009e73";
      case CpiBucket::FrontIcache: return "#56b4e9";
      case CpiBucket::FrontBpred: return "#0072b2";
      case CpiBucket::BackRob: return "#e69f00";
      case CpiBucket::BackIq: return "#f0e442";
      case CpiBucket::BackPregs: return "#d55e00";
      case CpiBucket::BackLsq: return "#cc79a7";
      case CpiBucket::BackDcacheL1: return "#bbbbbb";
      case CpiBucket::BackDcacheL2: return "#888888";
      case CpiBucket::BackDcacheMem: return "#444444";
      case CpiBucket::BackCoherence: return "#aa0000";
      case CpiBucket::Drain: return "#eeddcc";
    }
    return "#000000";
}

} // namespace

std::string
renderCpiJson(const std::vector<CpiRow> &rows)
{
    CpiStack aggregate;
    std::string out = "{\n  \"buckets\": [";
    for (std::size_t i = 0; i < NumCpiBuckets; ++i) {
        out += strprintf("%s\"%s\"", i ? ", " : "",
                         cpiBucketName(static_cast<CpiBucket>(i)));
    }
    out += "],\n  \"jobs\": [";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const CpiRow &row = rows[r];
        aggregate.accumulate(row.report.machine);
        out += strprintf(
            "%s\n    {\"workload\": \"%s\", \"config\": \"%s\", "
            "\"cores\": %u,\n     \"cycles\": %llu,\n     \"stack\": ",
            r ? "," : "", jsonEscape(row.workload).c_str(),
            jsonEscape(row.config).c_str(), row.cores,
            static_cast<unsigned long long>(row.report.machine.total()));
        appendStack(out, row.report.machine, "     ");
        out += ",\n     \"per_core\": [";
        for (std::size_t c = 0; c < row.report.perCore.size(); ++c) {
            out += strprintf("%s\n      {\"cycles\": %llu, \"stack\": ",
                             c ? "," : "",
                             static_cast<unsigned long long>(
                                 row.report.perCore[c].total()));
            appendStack(out, row.report.perCore[c], "      ");
            out += "}";
        }
        out += row.report.perCore.empty() ? "]" : "\n     ]";
        out += ",\n     \"hot_retired\": ";
        appendHotTable(out, row.report.hotRetired, "     ");
        out += ",\n     \"hot_stall\": ";
        appendHotTable(out, row.report.hotStall, "     ");
        out += strprintf(",\n     \"hotspot_dropped\": %llu}",
                         static_cast<unsigned long long>(
                             row.report.hotspotDropped));
    }
    out += rows.empty() ? "],\n" : "\n  ],\n";
    out += strprintf("  \"aggregate\": {\"cycles\": %llu, \"stack\": ",
                     static_cast<unsigned long long>(aggregate.total()));
    appendStack(out, aggregate, "  ");
    out += "}\n}\n";
    return out;
}

std::string
renderCpiHtml(const std::vector<CpiRow> &rows)
{
    std::string out;
    out +=
        "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n"
        "<title>CPI stacks</title>\n<style>\n"
        "body { font: 14px sans-serif; margin: 2em; color: #222; }\n"
        "h1 { font-size: 1.4em; } h2 { font-size: 1.1em; }\n"
        ".bar { display: flex; height: 28px; width: 100%; max-width: "
        "900px;\n       border: 1px solid #999; margin: 2px 0 10px; }\n"
        ".seg { height: 100%; }\n"
        ".legend span { display: inline-block; margin-right: 1em; "
        "white-space: nowrap; }\n"
        ".swatch { display: inline-block; width: 12px; height: 12px; "
        "border: 1px solid #999;\n          margin-right: 4px; "
        "vertical-align: -1px; }\n"
        "table { border-collapse: collapse; margin: 0.5em 0 1.5em; }\n"
        "td, th { border: 1px solid #ccc; padding: 2px 10px; "
        "text-align: right; }\n"
        "th { background: #f2f2f2; }\n"
        "td.pc { font-family: monospace; text-align: left; }\n"
        "</style>\n</head>\n<body>\n<h1>CPI stacks</h1>\n";

    out += "<p class=\"legend\">";
    for (std::size_t i = 0; i < NumCpiBuckets; ++i) {
        const auto b = static_cast<CpiBucket>(i);
        out += strprintf(
            "<span><span class=\"swatch\" style=\"background:%s\">"
            "</span>%s</span>",
            bucketColor(b), cpiBucketName(b));
    }
    out += "</p>\n";

    for (const CpiRow &row : rows) {
        const std::uint64_t cycles = row.report.machine.total();
        out += strprintf(
            "<h2>%s &middot; %s (%u core%s, %llu cycles)</h2>\n"
            "<div class=\"bar\">",
            jsonEscape(row.workload).c_str(),
            jsonEscape(row.config).c_str(), row.cores,
            row.cores == 1 ? "" : "s",
            static_cast<unsigned long long>(cycles));
        for (std::size_t i = 0; i < NumCpiBuckets && cycles; ++i) {
            const auto b = static_cast<CpiBucket>(i);
            const std::uint64_t c = row.report.machine.cycles[i];
            if (!c)
                continue;
            const double pct =
                100.0 * static_cast<double>(c) /
                static_cast<double>(cycles);
            out += strprintf(
                "<div class=\"seg\" style=\"width:%.3f%%;"
                "background:%s\" title=\"%s: %llu (%.1f%%)\"></div>",
                pct, bucketColor(b), cpiBucketName(b),
                static_cast<unsigned long long>(c), pct);
        }
        out += "</div>\n";

        if (!row.report.hotRetired.empty() ||
            !row.report.hotStall.empty()) {
            out += "<table>\n<tr><th>pc</th><th>retired</th>"
                   "<th>stall cycles</th></tr>\n";
            // Merge both hotspot views into one table keyed by pc,
            // retaining the retired-ordered rows first.
            std::vector<HotspotProfile::Entry> merged =
                row.report.hotRetired;
            for (const HotspotProfile::Entry &e : row.report.hotStall) {
                bool seen = false;
                for (const HotspotProfile::Entry &m : merged)
                    seen = seen || m.pc == e.pc;
                if (!seen)
                    merged.push_back(e);
            }
            for (const HotspotProfile::Entry &e : merged) {
                out += strprintf(
                    "<tr><td class=\"pc\">0x%llx</td><td>%llu</td>"
                    "<td>%llu</td></tr>\n",
                    static_cast<unsigned long long>(e.pc),
                    static_cast<unsigned long long>(e.retired),
                    static_cast<unsigned long long>(e.stallCycles));
            }
            out += "</table>\n";
            if (row.report.hotspotDropped) {
                out += strprintf(
                    "<p>%llu profile events dropped (table full)</p>\n",
                    static_cast<unsigned long long>(
                        row.report.hotspotDropped));
            }
        }
    }
    out += "</body>\n</html>\n";
    return out;
}

std::string
renderSampledCpiJson(const std::vector<SampledCpiRow> &rows)
{
    std::string out = "{\n  \"buckets\": [";
    for (std::size_t i = 0; i < NumCpiBuckets; ++i) {
        out += strprintf("%s\"%s\"", i ? ", " : "",
                         cpiBucketName(static_cast<CpiBucket>(i)));
    }
    out += "],\n  \"jobs\": [";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const SampledCpiRow &row = rows[r];
        double total = 0.0;
        for (double v : row.est)
            total += v;
        out += strprintf(
            "%s\n    {\"workload\": \"%s\", \"config\": \"%s\", "
            "\"cores\": %u,\n     \"est_cycles\": %.3f,\n"
            "     \"stack\": {",
            r ? "," : "", jsonEscape(row.workload).c_str(),
            jsonEscape(row.config).c_str(), row.cores, total);
        for (std::size_t i = 0; i < NumCpiBuckets; ++i) {
            out += strprintf(
                "%s\n       \"%s\": %.3f", i ? "," : "",
                cpiBucketName(static_cast<CpiBucket>(i)), row.est[i]);
        }
        out += "\n     }}";
    }
    out += rows.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

} // namespace reno::obs
