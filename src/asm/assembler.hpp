/**
 * @file
 * Two-pass assembler for the RENO ISA.
 *
 * Supported syntax:
 *   - comments: '#' or ';' to end of line
 *   - labels:   `name:` (optionally followed by an instruction)
 *   - directives: .text .data .quad .word .byte .asciiz .align .space
 *   - registers: r0..r31 or Alpha ABI aliases (v0, t0.., a0.., sp, ...)
 *   - memory operands: `disp(base)`, e.g. `ldq t0, 8(sp)`
 *   - pseudo-instructions:
 *       mov rd, rs          -> addi rd, rs, 0
 *       nop                 -> addi zero, zero, 0
 *       li rd, imm          -> addi rd, zero, imm   (or lui+ori)
 *       la rd, label        -> lui rd, hi16; ori rd, rd, lo16
 *       subi rd, rs, imm    -> addi rd, rs, -imm
 *       call label          -> bsr ra, label
 *       ret                 -> jmp (ra)
 *       j label             -> br label
 *       beqz/bnez rs, label -> beq/bne rs, label
 *
 * Arithmetic/compare/memory/branch immediates are signed 16-bit;
 * logical immediates (andi/ori/xori) are zero-extended 16-bit.
 */
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/inst.hpp"

namespace reno
{

/** Default load addresses for assembled programs. */
constexpr Addr DefaultTextBase = 0x1000;
constexpr Addr DefaultDataBase = 0x100000;
constexpr Addr DefaultStackTop = 0x7ff000;

/** Error raised on malformed assembly; carries the source line number. */
class AsmError : public std::runtime_error
{
  public:
    AsmError(unsigned line, const std::string &message);

    unsigned line() const { return line_; }

  private:
    unsigned line_;
};

/** An assembled, loadable program image. */
struct Program {
    Addr textBase = DefaultTextBase;
    std::vector<std::uint32_t> text;   //!< encoded instructions
    Addr dataBase = DefaultDataBase;
    std::vector<std::uint8_t> data;    //!< initialized data segment
    Addr entry = DefaultTextBase;      //!< `_start` if defined
    std::map<std::string, Addr> symbols;

    /** Total number of static instructions. */
    size_t numInsts() const { return text.size(); }

    /** Decoded instruction at @p pc; pc must be text-aligned. */
    Instruction instAt(Addr pc) const;

    /** True iff @p pc lies within the text segment. */
    bool
    inText(Addr pc) const
    {
        return pc >= textBase && pc < textBase + text.size() * 4 &&
               (pc & 3) == 0;
    }
};

/** Assemble @p source into a program image. Throws AsmError. */
Program assemble(const std::string &source);

} // namespace reno
