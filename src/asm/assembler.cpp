#include "asm/assembler.hpp"

#include <cctype>
#include <cstring>
#include <optional>

#include "common/log.hpp"
#include "isa/regs.hpp"

namespace reno
{

AsmError::AsmError(unsigned line, const std::string &message)
    : std::runtime_error(strprintf("line %u: %s", line, message.c_str())),
      line_(line)
{
}

Instruction
Program::instAt(Addr pc) const
{
    if (!inText(pc))
        panic("instAt: pc 0x%llx outside text",
              static_cast<unsigned long long>(pc));
    return decode(text[(pc - textBase) / 4]);
}

namespace
{

/** One operand token: register, immediate, symbol, or disp(base). */
struct Operand {
    enum class Kind { Reg, Imm, Sym, Mem } kind;
    unsigned reg = 0;        //!< Reg / Mem base
    std::int64_t imm = 0;    //!< Imm / Mem displacement
    std::string sym;         //!< Sym name (also Mem symbolic disp)
};

/** A parsed source statement: mnemonic plus operand list. */
struct Statement {
    unsigned line = 0;
    std::string mnemonic;
    std::vector<Operand> operands;
};

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '$';
}

/** Split a source line into label / mnemonic / raw operand strings. */
struct Line {
    std::vector<std::string> labels;
    std::string mnemonic;
    std::vector<std::string> args;
};

std::string
trim(const std::string &s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

Line
splitLine(const std::string &raw, unsigned lineno)
{
    Line out;
    std::string s = raw;
    // Strip comments, respecting string literals for .asciiz.
    bool in_str = false;
    for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '"' && (i == 0 || s[i - 1] != '\\'))
            in_str = !in_str;
        else if (!in_str && (s[i] == '#' || s[i] == ';')) {
            s.resize(i);
            break;
        }
    }
    s = trim(s);

    // Peel off leading labels.
    while (true) {
        size_t i = 0;
        while (i < s.size() && isIdentChar(s[i]))
            ++i;
        if (i > 0 && i < s.size() && s[i] == ':') {
            out.labels.push_back(s.substr(0, i));
            s = trim(s.substr(i + 1));
        } else {
            break;
        }
    }
    if (s.empty())
        return out;

    // Mnemonic up to first whitespace.
    size_t i = 0;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])))
        ++i;
    out.mnemonic = s.substr(0, i);
    s = trim(s.substr(i));

    // Operands: comma-separated, except inside quotes.
    if (!s.empty()) {
        std::string cur;
        bool quoted = false;
        for (char c : s) {
            if (c == '"')
                quoted = !quoted;
            if (c == ',' && !quoted) {
                out.args.push_back(trim(cur));
                cur.clear();
            } else {
                cur += c;
            }
        }
        out.args.push_back(trim(cur));
        for (const auto &a : out.args) {
            if (a.empty())
                throw AsmError(lineno, "empty operand");
        }
    }
    return out;
}

std::optional<std::int64_t>
parseInt(const std::string &s)
{
    if (s.empty())
        return std::nullopt;
    size_t pos = 0;
    bool neg = false;
    if (s[pos] == '-' || s[pos] == '+') {
        neg = s[pos] == '-';
        ++pos;
    }
    if (pos >= s.size())
        return std::nullopt;
    int base = 10;
    if (s.size() - pos > 2 && s[pos] == '0' &&
        (s[pos + 1] == 'x' || s[pos + 1] == 'X')) {
        base = 16;
        pos += 2;
    }
    std::int64_t value = 0;
    for (; pos < s.size(); ++pos) {
        const char c = s[pos];
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (base == 16 && c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            return std::nullopt;
        value = value * base + digit;
    }
    return neg ? -value : value;
}

Operand
parseOperand(const std::string &s, unsigned lineno)
{
    Operand op;
    // disp(base) memory operand?
    const size_t paren = s.find('(');
    if (paren != std::string::npos && s.back() == ')') {
        const std::string disp = trim(s.substr(0, paren));
        const std::string base =
            trim(s.substr(paren + 1, s.size() - paren - 2));
        const unsigned breg = parseRegName(base);
        if (breg >= NumLogRegs)
            throw AsmError(lineno, "bad base register '" + base + "'");
        op.kind = Operand::Kind::Mem;
        op.reg = breg;
        if (disp.empty()) {
            op.imm = 0;
        } else if (auto v = parseInt(disp)) {
            op.imm = *v;
        } else {
            op.sym = disp;
        }
        return op;
    }
    const unsigned reg = parseRegName(s);
    if (reg < NumLogRegs) {
        op.kind = Operand::Kind::Reg;
        op.reg = reg;
        return op;
    }
    if (auto v = parseInt(s)) {
        op.kind = Operand::Kind::Imm;
        op.imm = *v;
        return op;
    }
    if (!s.empty() && (std::isalpha(static_cast<unsigned char>(s[0])) ||
                       s[0] == '_' || s[0] == '.')) {
        op.kind = Operand::Kind::Sym;
        op.sym = s;
        return op;
    }
    throw AsmError(lineno, "cannot parse operand '" + s + "'");
}

/** Assembler working state shared between the two passes. */
class Assembler
{
  public:
    explicit Assembler(const std::string &source)
    {
        size_t start = 0;
        unsigned lineno = 1;
        while (start <= source.size()) {
            size_t end = source.find('\n', start);
            if (end == std::string::npos)
                end = source.size();
            lines_.emplace_back(lineno,
                                source.substr(start, end - start));
            start = end + 1;
            ++lineno;
        }
    }

    Program
    run()
    {
        pass1();
        pass2();
        if (auto it = prog_.symbols.find("_start");
            it != prog_.symbols.end()) {
            prog_.entry = it->second;
        } else {
            prog_.entry = prog_.textBase;
        }
        return prog_;
    }

  private:
    enum class Segment { Text, Data };

    // --- Pass 1: compute label addresses -----------------------------
    void
    pass1()
    {
        Segment seg = Segment::Text;
        Addr text_pc = prog_.textBase;
        Addr data_pc = prog_.dataBase;
        for (const auto &[lineno, raw] : lines_) {
            const Line line = splitLine(raw, lineno);
            for (const auto &label : line.labels) {
                const Addr addr = seg == Segment::Text ? text_pc : data_pc;
                if (!prog_.symbols.emplace(label, addr).second)
                    throw AsmError(lineno, "duplicate label '" + label + "'");
            }
            if (line.mnemonic.empty())
                continue;
            if (line.mnemonic[0] == '.') {
                directiveSize(line, lineno, seg, data_pc);
                continue;
            }
            if (seg != Segment::Text)
                throw AsmError(lineno, "instruction outside .text");
            text_pc += 4 * instSize(line, lineno);
        }
    }

    /** Number of machine instructions a (pseudo-)instruction expands to. */
    unsigned
    instSize(const Line &line, unsigned lineno)
    {
        if (line.mnemonic == "li") {
            if (line.args.size() != 2)
                throw AsmError(lineno, "li needs 2 operands");
            const auto v = parseInt(line.args[1]);
            if (!v)
                throw AsmError(lineno, "li needs a numeric immediate");
            return fitsSigned(*v, 16) ? 1 : 2;
        }
        if (line.mnemonic == "la")
            return 2;
        return 1;
    }

    /** Pass-1 handling of directives: advance segment cursors. */
    void
    directiveSize(const Line &line, unsigned lineno, Segment &seg,
                  Addr &data_pc)
    {
        const std::string &d = line.mnemonic;
        if (d == ".text") {
            seg = Segment::Text;
        } else if (d == ".data") {
            seg = Segment::Data;
        } else if (d == ".globl" || d == ".global") {
            // accepted and ignored
        } else if (d == ".quad") {
            requireData(seg, lineno, d);
            data_pc += 8 * line.args.size();
        } else if (d == ".word") {
            requireData(seg, lineno, d);
            data_pc += 4 * line.args.size();
        } else if (d == ".byte") {
            requireData(seg, lineno, d);
            data_pc += line.args.size();
        } else if (d == ".space") {
            requireData(seg, lineno, d);
            const auto v = parseInt(line.args.at(0));
            if (!v || *v < 0)
                throw AsmError(lineno, ".space needs a size");
            data_pc += static_cast<Addr>(*v);
        } else if (d == ".align") {
            requireData(seg, lineno, d);
            const auto v = parseInt(line.args.at(0));
            if (!v || *v < 0 || *v > 12)
                throw AsmError(lineno, ".align needs a power 0..12");
            const Addr align = Addr{1} << *v;
            data_pc = (data_pc + align - 1) & ~(align - 1);
        } else if (d == ".asciiz") {
            requireData(seg, lineno, d);
            data_pc += stringLiteral(line.args.at(0), lineno).size() + 1;
        } else {
            throw AsmError(lineno, "unknown directive '" + d + "'");
        }
    }

    void
    requireData(Segment seg, unsigned lineno, const std::string &d)
    {
        if (seg != Segment::Data)
            throw AsmError(lineno, d + " only allowed in .data");
    }

    static std::string
    stringLiteral(const std::string &s, unsigned lineno)
    {
        if (s.size() < 2 || s.front() != '"' || s.back() != '"')
            throw AsmError(lineno, "expected string literal");
        std::string out;
        for (size_t i = 1; i + 1 < s.size(); ++i) {
            char c = s[i];
            if (c == '\\' && i + 2 < s.size()) {
                ++i;
                switch (s[i]) {
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case '0': c = '\0'; break;
                  case '\\': c = '\\'; break;
                  case '"': c = '"'; break;
                  default:
                    throw AsmError(lineno, "bad escape in string");
                }
            }
            out += c;
        }
        return out;
    }

    // --- Pass 2: emit code and data ----------------------------------
    void
    pass2()
    {
        Segment seg = Segment::Text;
        for (const auto &[lineno, raw] : lines_) {
            const Line line = splitLine(raw, lineno);
            if (line.mnemonic.empty())
                continue;
            if (line.mnemonic[0] == '.') {
                emitDirective(line, lineno, seg);
                continue;
            }
            emitInst(line, lineno);
        }
    }

    Addr
    resolve(const std::string &sym, unsigned lineno) const
    {
        auto it = prog_.symbols.find(sym);
        if (it == prog_.symbols.end())
            throw AsmError(lineno, "undefined symbol '" + sym + "'");
        return it->second;
    }

    void
    emitDirective(const Line &line, unsigned lineno, Segment &seg)
    {
        const std::string &d = line.mnemonic;
        auto emit_bytes = [&](std::uint64_t v, unsigned n) {
            for (unsigned i = 0; i < n; ++i)
                prog_.data.push_back(
                    static_cast<std::uint8_t>(v >> (8 * i)));
        };
        if (d == ".text") {
            seg = Segment::Text;
        } else if (d == ".data") {
            seg = Segment::Data;
        } else if (d == ".globl" || d == ".global") {
        } else if (d == ".quad" || d == ".word" || d == ".byte") {
            const unsigned n = d == ".quad" ? 8 : d == ".word" ? 4 : 1;
            for (const auto &arg : line.args) {
                std::int64_t v;
                if (auto num = parseInt(arg))
                    v = *num;
                else
                    v = static_cast<std::int64_t>(resolve(arg, lineno));
                emit_bytes(static_cast<std::uint64_t>(v), n);
            }
        } else if (d == ".space") {
            const auto v = parseInt(line.args.at(0));
            prog_.data.insert(prog_.data.end(),
                              static_cast<size_t>(*v), 0);
        } else if (d == ".align") {
            const Addr align = Addr{1} << *parseInt(line.args.at(0));
            while ((prog_.dataBase + prog_.data.size()) & (align - 1))
                prog_.data.push_back(0);
        } else if (d == ".asciiz") {
            const std::string s = stringLiteral(line.args.at(0), lineno);
            for (char c : s)
                prog_.data.push_back(static_cast<std::uint8_t>(c));
            prog_.data.push_back(0);
        }
    }

    Addr
    curPc() const
    {
        return prog_.textBase + prog_.text.size() * 4;
    }

    void
    emit(const Instruction &inst)
    {
        prog_.text.push_back(encode(inst));
    }

    /** Branch displacement from the *next* emitted pc to @p target. */
    std::int32_t
    branchDisp(Addr target, unsigned lineno) const
    {
        const std::int64_t delta =
            (static_cast<std::int64_t>(target) -
             static_cast<std::int64_t>(curPc()) - 4) / 4;
        if (!fitsSigned(delta, 16))
            throw AsmError(lineno, "branch target out of range");
        return static_cast<std::int32_t>(delta);
    }

    std::vector<Operand>
    parseOperands(const Line &line, unsigned lineno)
    {
        std::vector<Operand> ops;
        ops.reserve(line.args.size());
        for (const auto &a : line.args)
            ops.push_back(parseOperand(a, lineno));
        return ops;
    }

    void
    expect(bool ok, unsigned lineno, const char *what)
    {
        if (!ok)
            throw AsmError(lineno, what);
    }

    std::int32_t
    checkImm16(std::int64_t v, unsigned lineno, bool zero_extended = false)
    {
        if (zero_extended) {
            if (v < 0 || v > 0xffff)
                throw AsmError(lineno, "immediate outside [0, 65535]");
            // Stored sign-extended in the decoded form; semantics mask.
            return static_cast<std::int32_t>(signExtend(
                static_cast<std::uint64_t>(v), 16));
        }
        if (!fitsSigned(v, 16))
            throw AsmError(lineno, "immediate does not fit in 16 bits");
        return static_cast<std::int32_t>(v);
    }

    void
    emitInst(const Line &line, unsigned lineno)
    {
        const std::string &m = line.mnemonic;
        std::vector<Operand> ops = parseOperands(line, lineno);
        using K = Operand::Kind;

        // ---- pseudo-instructions ------------------------------------
        if (m == "nop") {
            expect(ops.empty(), lineno, "nop takes no operands");
            emit(Instruction::nop());
            return;
        }
        if (m == "mov") {
            expect(ops.size() == 2 && ops[0].kind == K::Reg &&
                   ops[1].kind == K::Reg, lineno, "mov rd, rs");
            emit(Instruction::move(ops[0].reg, ops[1].reg));
            return;
        }
        if (m == "li") {
            expect(ops.size() == 2 && ops[0].kind == K::Reg &&
                   ops[1].kind == K::Imm, lineno, "li rd, imm");
            const std::int64_t v = ops[1].imm;
            if (fitsSigned(v, 16)) {
                emit(Instruction::ri(Opcode::ADDI, ops[0].reg, RegZero,
                                     static_cast<std::int32_t>(v)));
            } else if (v >= 0 && v <= 0xffffffffLL) {
                emit(Instruction::ri(Opcode::LUI, ops[0].reg, RegZero,
                                     static_cast<std::int32_t>(
                                         signExtend(v >> 16, 16))));
                emit(Instruction::ri(Opcode::ORI, ops[0].reg, ops[0].reg,
                                     static_cast<std::int32_t>(
                                         signExtend(v & 0xffff, 16))));
            } else {
                throw AsmError(lineno, "li immediate out of range");
            }
            return;
        }
        if (m == "la") {
            expect(ops.size() == 2 && ops[0].kind == K::Reg &&
                   ops[1].kind == K::Sym, lineno, "la rd, label");
            const Addr a = resolve(ops[1].sym, lineno);
            if (a > 0xffffffffULL)
                throw AsmError(lineno, "la address out of range");
            emit(Instruction::ri(Opcode::LUI, ops[0].reg, RegZero,
                                 static_cast<std::int32_t>(
                                     signExtend(a >> 16, 16))));
            emit(Instruction::ri(Opcode::ORI, ops[0].reg, ops[0].reg,
                                 static_cast<std::int32_t>(
                                     signExtend(a & 0xffff, 16))));
            return;
        }
        if (m == "subi") {
            expect(ops.size() == 3 && ops[0].kind == K::Reg &&
                   ops[1].kind == K::Reg && ops[2].kind == K::Imm,
                   lineno, "subi rd, rs, imm");
            emit(Instruction::ri(Opcode::ADDI, ops[0].reg, ops[1].reg,
                                 checkImm16(-ops[2].imm, lineno)));
            return;
        }
        if (m == "call") {
            expect(ops.size() == 1 && ops[0].kind == K::Sym, lineno,
                   "call label");
            const Addr target = resolve(ops[0].sym, lineno);
            emit(Instruction::jump(Opcode::BSR, RegRa, RegZero,
                                   branchDisp(target, lineno)));
            return;
        }
        if (m == "ret") {
            expect(ops.empty(), lineno, "ret takes no operands");
            emit(Instruction::jump(Opcode::JMP, RegZero, RegRa, 0));
            return;
        }
        if (m == "j") {
            expect(ops.size() == 1 && ops[0].kind == K::Sym, lineno,
                   "j label");
            emit(Instruction::branch(Opcode::BR, RegZero,
                                     branchDisp(resolve(ops[0].sym, lineno),
                                                lineno)));
            return;
        }
        if (m == "beqz" || m == "bnez") {
            expect(ops.size() == 2 && ops[0].kind == K::Reg &&
                   ops[1].kind == K::Sym, lineno, "beqz rs, label");
            emit(Instruction::branch(
                m == "beqz" ? Opcode::BEQ : Opcode::BNE, ops[0].reg,
                branchDisp(resolve(ops[1].sym, lineno), lineno)));
            return;
        }

        // ---- real opcodes -------------------------------------------
        const Opcode op = opcodeFromMnemonic(m);
        if (op == Opcode::NumOpcodes)
            throw AsmError(lineno, "unknown mnemonic '" + m + "'");
        const OpInfo &info = opInfo(op);

        switch (info.fmt) {
          case InstFormat::R:
            expect(ops.size() == 3 && ops[0].kind == K::Reg &&
                   ops[1].kind == K::Reg && ops[2].kind == K::Reg,
                   lineno, "expected: op rd, ra, rb");
            emit(Instruction::rr(op, ops[0].reg, ops[1].reg, ops[2].reg));
            return;
          case InstFormat::I: {
            if (op == Opcode::LUI) {
                expect(ops.size() == 2 && ops[0].kind == K::Reg &&
                       ops[1].kind == K::Imm, lineno, "lui rd, imm");
                emit(Instruction::ri(op, ops[0].reg, RegZero,
                                     checkImm16(ops[1].imm, lineno)));
                return;
            }
            expect(ops.size() == 3 && ops[0].kind == K::Reg &&
                   ops[1].kind == K::Reg && ops[2].kind == K::Imm,
                   lineno, "expected: op rd, ra, imm");
            const bool zext = op == Opcode::ANDI || op == Opcode::ORI ||
                              op == Opcode::XORI;
            emit(Instruction::ri(op, ops[0].reg, ops[1].reg,
                                 checkImm16(ops[2].imm, lineno, zext)));
            return;
          }
          case InstFormat::Mem:
            expect(ops.size() == 2 && ops[0].kind == K::Reg &&
                   ops[1].kind == K::Mem, lineno,
                   "expected: op reg, disp(base)");
            expect(ops[1].sym.empty(), lineno,
                   "symbolic memory displacements not supported");
            emit(Instruction::mem(op, ops[0].reg, ops[1].reg,
                                  checkImm16(ops[1].imm, lineno)));
            return;
          case InstFormat::Branch: {
            if (op == Opcode::BR) {
                expect(ops.size() == 1 && ops[0].kind == K::Sym, lineno,
                       "br label");
                emit(Instruction::branch(op, RegZero,
                                         branchDisp(resolve(ops[0].sym,
                                                            lineno),
                                                    lineno)));
                return;
            }
            expect(ops.size() == 2 && ops[0].kind == K::Reg &&
                   ops[1].kind == K::Sym, lineno, "expected: bxx rs, label");
            emit(Instruction::branch(op, ops[0].reg,
                                     branchDisp(resolve(ops[1].sym, lineno),
                                                lineno)));
            return;
          }
          case InstFormat::Jump:
            if (op == Opcode::BSR) {
                expect(ops.size() == 2 && ops[0].kind == K::Reg &&
                       ops[1].kind == K::Sym, lineno, "bsr rd, label");
                emit(Instruction::jump(op, ops[0].reg, RegZero,
                                       branchDisp(resolve(ops[1].sym,
                                                          lineno),
                                                  lineno)));
                return;
            }
            if (op == Opcode::JSR) {
                expect(ops.size() == 2 && ops[0].kind == K::Reg &&
                       ops[1].kind == K::Mem && ops[1].imm == 0 &&
                       ops[1].sym.empty(),
                       lineno, "jsr rd, (rs)");
                emit(Instruction::jump(op, ops[0].reg, ops[1].reg, 0));
                return;
            }
            // JMP (rs)
            expect(ops.size() == 1 && ops[0].kind == K::Mem &&
                   ops[0].imm == 0 && ops[0].sym.empty(), lineno,
                   "jmp (rs)");
            emit(Instruction::jump(op, RegZero, ops[0].reg, 0));
            return;
          case InstFormat::None:
            expect(ops.empty(), lineno, "no operands expected");
            emit(Instruction::syscall());
            return;
        }
        throw AsmError(lineno, "unhandled instruction format");
    }

    std::vector<std::pair<unsigned, std::string>> lines_;
    Program prog_;
};

} // namespace

Program
assemble(const std::string &source)
{
    return Assembler(source).run();
}

} // namespace reno
