#include "trace/pipetrace.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "isa/inst.hpp"

namespace reno
{

void
PipeTracer::onRetire(const DynInst &d)
{
    ++seen_;
    if (seen_ <= opts_.skipFirst || full())
        return;

    PipeRecord r;
    r.seq = d.seq;
    r.pc = d.rec.pc;
    r.inst = d.rec.inst;
    r.fetchCycle = d.fetchCycle;
    r.renameCycle = d.renameCycle;
    r.issueCycle = d.issueCycle;
    r.completeCycle = d.completeCycle;
    r.retireCycle = d.retireCycle;
    r.elim = d.ren.elim;
    r.mispredicted = d.mispredicted;
    r.memLevel = d.memLevel;
    if (d.ren.hasDest) {
        r.destPreg = d.ren.destPreg;
        r.destDisp = d.ren.destDisp;
    }
    records_.push_back(r);
}

void
PipeTracer::clear()
{
    records_.clear();
    seen_ = 0;
}

std::string_view
elimKindName(ElimKind kind)
{
    switch (kind) {
      case ElimKind::None: return "";
      case ElimKind::Move: return "ME";
      case ElimKind::Fold: return "CF";
      case ElimKind::Cse:  return "CSE";
      case ElimKind::Ra:   return "RA";
    }
    return "";
}

namespace
{

/** Place @p mark at relative cycle @p at if it fits the window. */
void
place(std::string &lane, Cycle at, Cycle origin, char mark)
{
    if (at == InvalidCycle || at < origin)
        return;
    const Cycle rel = at - origin;
    if (rel < lane.size())
        lane[rel] = mark;
}

} // namespace

std::string
renderPipeLine(const PipeRecord &rec, Cycle origin, unsigned width)
{
    std::string lane(width, '.');
    place(lane, rec.fetchCycle, origin, 'f');
    place(lane, rec.renameCycle, origin, 'r');
    place(lane, rec.issueCycle, origin, 'i');
    place(lane, rec.completeCycle, origin, 'c');
    place(lane, rec.retireCycle, origin, 'R');

    std::string note;
    if (rec.eliminated()) {
        note = strprintf("  %s-collapsed -> [p%u:%+d]",
                         std::string(elimKindName(rec.elim)).c_str(),
                         rec.destPreg, int(rec.destDisp));
    } else if (rec.destPreg != InvalidPhysReg) {
        note = strprintf("  -> [p%u:%+d]", rec.destPreg,
                         int(rec.destDisp));
    }
    if (rec.mispredicted)
        note += "  MISPREDICT";

    return strprintf("[%s]  0x%04llx %-28s%s", lane.c_str(),
                     static_cast<unsigned long long>(rec.pc),
                     disassemble(rec.inst, rec.pc).c_str(),
                     note.c_str());
}

std::string
renderPipeTrace(const std::vector<PipeRecord> &records, unsigned width)
{
    if (records.empty())
        return "(empty trace)\n";

    const Cycle origin = records.front().fetchCycle;
    std::string out;
    out += strprintf("pipeline trace: %zu instructions, cycles %llu..\n"
                     "f=fetch r=rename i=issue c=complete R=retire; "
                     "collapsed instructions never issue\n",
                     records.size(),
                     static_cast<unsigned long long>(origin));

    std::uint64_t elim[NumElimKinds] = {};
    for (const PipeRecord &r : records) {
        out += renderPipeLine(r, origin, width);
        out += '\n';
        ++elim[static_cast<unsigned>(r.elim)];
    }

    std::uint64_t collapsed = 0;
    for (unsigned k = 1; k < NumElimKinds; ++k)
        collapsed += elim[k];
    out += strprintf("collapsed %llu/%zu (",
                     static_cast<unsigned long long>(collapsed),
                     records.size());
    for (unsigned k = 1; k < NumElimKinds; ++k) {
        out += strprintf(
            "%s%.*s %llu", k > 1 ? ", " : "",
            static_cast<int>(
                elimKindName(static_cast<ElimKind>(k)).size()),
            elimKindName(static_cast<ElimKind>(k)).data(),
            static_cast<unsigned long long>(elim[k]));
    }
    out += ")\n";
    return out;
}

PipeTraceSink &
PipeTraceSink::instance()
{
    static PipeTraceSink sink;
    return sink;
}

void
PipeTraceSink::enable(std::FILE *sink)
{
    std::lock_guard<std::mutex> lock(mu_);
    sink_ = sink;
    enabled_.store(true, std::memory_order_relaxed);
}

void
PipeTraceSink::disable()
{
    std::lock_guard<std::mutex> lock(mu_);
    enabled_.store(false, std::memory_order_relaxed);
    sink_ = nullptr;
}

void
PipeTraceSink::emit(const std::string &header,
                    const std::vector<PipeRecord> &records)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    if (!sink_)
        return;
    const std::string body = renderPipeTrace(records);
    std::fprintf(sink_, "== %s ==\n%s", header.c_str(), body.c_str());
    std::fflush(sink_);
}

} // namespace reno
