/**
 * @file
 * Pipeline trace collection and rendering.
 *
 * A PipeTracer is a RetireListener that records, for every retired
 * dynamic instruction, the cycle each pipeline stage handled it plus
 * the RENO rename outcome (which optimization collapsed it, which
 * physical register it shares, the accumulated map-table displacement).
 * The recorded trace can be rendered as a gem5-O3-viewer-style text
 * diagram:
 *
 *   [f..r..i.c....R]  0x0040 addi r2, r1, 8    CF-folded -> [p7:+8]
 *
 * where f=fetch, r=rename, i=issue, c=complete, R=retire, and
 * collapsed instructions show no issue/complete (they skip the
 * execution core entirely).
 *
 * The tracer is bounded: it keeps the first @c maxRecords retired
 * instructions (optionally after skipping a warm-up prefix), so it can
 * be attached to full workload runs without unbounded memory use.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "uarch/dyninst.hpp"
#include "uarch/retire_listener.hpp"

namespace reno
{

/** One retired instruction's trace record. */
struct PipeRecord {
    InstSeq seq = 0;
    Addr pc = 0;
    Instruction inst;

    Cycle fetchCycle = 0;
    Cycle renameCycle = 0;
    Cycle issueCycle = InvalidCycle;     //!< InvalidCycle if collapsed
    Cycle completeCycle = InvalidCycle;
    Cycle retireCycle = 0;

    ElimKind elim = ElimKind::None;
    bool mispredicted = false;
    MemHitLevel memLevel = MemHitLevel::None;

    /** Destination mapping after rename ([p:d]); preg is
     *  InvalidPhysReg when the instruction has no destination. */
    PhysReg destPreg = InvalidPhysReg;
    std::int16_t destDisp = 0;

    bool eliminated() const { return elim != ElimKind::None; }
};

/** Collects PipeRecords from a Core. */
class PipeTracer : public RetireListener
{
  public:
    struct Options {
        std::uint64_t skipFirst = 0;    //!< warm-up records to drop
        std::uint64_t maxRecords = 4096;
    };

    PipeTracer() = default;
    explicit PipeTracer(const Options &opts) : opts_(opts) {}

    void onRetire(const DynInst &inst) override;

    const std::vector<PipeRecord> &records() const { return records_; }
    std::uint64_t retiredSeen() const { return seen_; }
    bool full() const { return records_.size() >= opts_.maxRecords; }

    void clear();

  private:
    Options opts_;
    std::vector<PipeRecord> records_;
    std::uint64_t seen_ = 0;
};

/** Name of an elimination kind ("ME", "CF", "CSE", "RA", or ""). */
std::string_view elimKindName(ElimKind kind);

/**
 * Render one record as a single diagram line. @p origin is subtracted
 * from all cycle numbers (use the first record's fetch cycle so the
 * window starts at column zero); @p width clips the timeline.
 */
std::string renderPipeLine(const PipeRecord &rec, Cycle origin,
                           unsigned width = 64);

/**
 * Render a full trace: a header, one line per record, and a footer
 * summarizing eliminations within the window.
 */
std::string renderPipeTrace(const std::vector<PipeRecord> &records,
                            unsigned width = 64);

/**
 * Process-wide sink behind `--pipetrace[=FILE]` (obs::Session): when
 * enabled, the harness attaches a bounded PipeTracer to every core it
 * runs and emits the rendered diagram here after the run. Off by
 * default; the sink never changes anything the simulation computes.
 * Emission is serialized under one mutex so concurrent campaign
 * workers never interleave diagrams.
 */
class PipeTraceSink
{
  public:
    static PipeTraceSink &instance();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Start collecting to @p sink (not owned; stderr or a file). */
    void enable(std::FILE *sink);
    void disable();

    /** Write "== <header> ==" plus the rendered trace. No-op when
     *  disabled. */
    void emit(const std::string &header,
              const std::vector<PipeRecord> &records);

  private:
    PipeTraceSink() = default;

    std::atomic<bool> enabled_{false};
    std::mutex mu_;
    std::FILE *sink_ = nullptr;
};

} // namespace reno
