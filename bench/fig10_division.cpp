/**
 * @file
 * Figure 10: dividing labor between RENO_CF and RENO_CSE+RA. Four
 * configurations per benchmark:
 *
 *   RENO           - CF handles ALU ops, loads-only IT (the default)
 *   RENO+FullInteg - CF plus a full (ALU + load) IT
 *   FullInteg      - register integration alone (no CF)
 *   LoadsInteg     - loads-only integration, no CF
 *
 * Plus the IT bandwidth comparison the paper quotes: the full-IT
 * configuration needs ~70% more table accesses than RENO.
 *
 * Paper shape targets: RENO ~= RENO+FullInteg (within ~0.5%), RENO
 * beats FullInteg by ~3% (SPEC) / ~6% (MediaBench), and beats
 * LoadsInteg by more.
 */
#include "bench_util.hpp"

using namespace reno;
using namespace reno::bench;

int
main(int argc, char **argv)
{
    banner("Figure 10: cooperation between RENO_CF and RENO_CSE+RA",
           "RENO TR MS-CIS-04-28 / ISCA 2005, Figure 10");

    const CoreParams machine = CoreParams::fourWide();
    const auto configs = divisionOfLabor(machine);
    const NamedConfig baseline{"BASE",
                               withReno(machine,
                                        RenoConfig::baseline())};

    sweep::Campaign campaign;
    for (const auto &[suite_name, workloads] : suites()) {
        campaign.addCross(workloads, {baseline});
        campaign.addCross(workloads, configs);
    }
    const sweep::CampaignResults results =
        campaign.run(options(argc, argv));

    std::uint64_t it_accesses_reno = 0, it_accesses_fullit = 0;

    for (const auto &[suite_name, workloads] : suites()) {
        TextTable t;
        t.header({"benchmark", "RENO", "RENO+FullInteg", "FullInteg",
                  "LoadsInteg"});
        std::vector<double> mean[4];
        for (const Workload *w : workloads) {
            const std::uint64_t base =
                results.get(w->name, "BASE").sim.cycles;
            std::vector<std::string> row{w->name};
            for (size_t c = 0; c < configs.size(); ++c) {
                const SimResult r =
                    results.get(w->name, configs[c].name).sim;
                const double s = speedupPercent(base, r.cycles);
                mean[c].push_back(s);
                row.push_back(fmtDouble(s, 1));
                if (c == 0)
                    it_accesses_reno += r.itAccesses;
                if (c == 1)
                    it_accesses_fullit += r.itAccesses;
            }
            t.row(row);
        }
        t.row({"amean", fmtDouble(amean(mean[0]), 1),
               fmtDouble(amean(mean[1]), 1),
               fmtDouble(amean(mean[2]), 1),
               fmtDouble(amean(mean[3]), 1)});
        std::printf("\n%s (%% speedup over baseline):\n",
                    suite_name.c_str());
        t.print();
    }

    std::printf("\nIT bandwidth: full-IT configuration performs "
                "%.0f%% more table accesses than RENO "
                "(paper: ~70%% more)\n",
                it_accesses_reno
                    ? (double(it_accesses_fullit) /
                           double(it_accesses_reno) - 1.0) * 100.0
                    : 0.0);
    return 0;
}
