/**
 * @file
 * Figure 12: RENO with a 2-cycle wakeup/select scheduling loop.
 * Performance of the 1-cycle and 2-cycle schedulers under BASE, CF+ME
 * and full RENO, normalized to the 1-cycle RENO-less baseline (=100).
 *
 * Paper shape targets: a 2-cycle loop costs the baseline ~7% (SPEC)
 * and ~11% (MediaBench); RENO compensates for the loss on SPEC and
 * even gains ~2.5% on MediaBench, by collapsing single-cycle
 * operations out of the dataflow graph rather than fusing them.
 */
#include "bench_util.hpp"

using namespace reno;
using namespace reno::bench;

int
main(int argc, char **argv)
{
    banner("Figure 12: RENO with a 2-cycle wakeup-select loop",
           "RENO TR MS-CIS-04-28 / ISCA 2005, Figure 12");

    const std::vector<std::pair<std::string, RenoConfig>> configs = {
        {"BASE", RenoConfig::baseline()},
        {"CF+ME", RenoConfig::meCf()},
        {"RA+CSE", RenoConfig::full()},
    };

    // The 1-cycle BASE jobs are content-identical to the reference
    // runs; the engine simulates them once.
    sweep::Campaign campaign;
    for (const auto &[suite_name, workloads] : suites()) {
        for (const Workload *w : workloads) {
            campaign.add(*w, {"ref", CoreParams::fourWide()});
            for (const auto &[cfg_name, reno_cfg] : configs) {
                for (const unsigned sched : {1u, 2u}) {
                    CoreParams p;
                    p.schedLoop = sched;
                    p.reno = reno_cfg;
                    campaign.add(*w, {cfg_name, p},
                                 strprintf("%uc", sched));
                }
            }
        }
    }
    const sweep::CampaignResults results =
        campaign.run(options(argc, argv));

    for (const auto &[suite_name, workloads] : suites()) {
        TextTable t;
        t.header({"config", "1-cycle", "2-cycle"});

        for (const auto &[cfg_name, reno_cfg] : configs) {
            std::vector<std::string> row{cfg_name};
            for (const unsigned sched : {1u, 2u}) {
                std::vector<double> rel;
                for (const Workload *w : workloads) {
                    const std::uint64_t ref =
                        results.get(w->name, "ref").sim.cycles;
                    const std::uint64_t cyc =
                        results.get(w->name, cfg_name,
                                    strprintf("%uc", sched))
                            .sim.cycles;
                    rel.push_back(100.0 * double(ref) / double(cyc));
                }
                row.push_back(fmtDouble(amean(rel), 1));
            }
            t.row(row);
        }
        std::printf("\n%s (performance, 1-cycle baseline = 100):\n",
                    suite_name.c_str());
        t.print();
    }
    return 0;
}
