/**
 * @file
 * Figure 8 (top): fraction of dynamic instructions eliminated or
 * folded by each RENO optimization - moves (RENO_ME), register-
 * immediate additions (RENO_CF) and loads (RENO_CSE+RA) - on the
 * 4-wide and 6-wide machines, for both suites.
 *
 * Paper shape targets: ~4% ME, 12% (SPEC) / 16% (MediaBench) CF,
 * 5% / 3.3% CSE+RA; total ~22%; slightly lower at 6-wide because the
 * dependent-elimination-per-cycle restriction binds more often.
 */
#include "bench_util.hpp"

using namespace reno;
using namespace reno::bench;

int
main(int argc, char **argv)
{
    banner("Figure 8 (top): % dynamic instructions eliminated",
           "RENO TR MS-CIS-04-28 / ISCA 2005, Figure 8 top");

    sweep::Campaign campaign;
    for (const unsigned width : {4u, 6u}) {
        CoreParams base = width == 6 ? CoreParams::sixWide()
                                     : CoreParams::fourWide();
        base.reno = RenoConfig::full();
        const std::string tag = strprintf("%uw", width);
        for (const auto &[suite_name, workloads] : suites())
            campaign.addCross(workloads, {{"RENO", base}}, tag);
    }
    const sweep::CampaignResults results =
        campaign.run(options(argc, argv));

    for (const unsigned width : {4u, 6u}) {
        const std::string tag = strprintf("%uw", width);
        std::printf("\n--- %u-wide machine ---\n", width);
        for (const auto &[suite_name, workloads] : suites()) {
            TextTable t;
            t.header({"benchmark", "ME%", "CF%", "CSE+RA%", "total%"});
            std::vector<double> me, cf, csera, total;
            for (const Workload *w : workloads) {
                const SimResult r =
                    results.get(w->name, "RENO", tag).sim;
                const double m =
                    r.elimFraction(ElimKind::Move) * 100;
                const double c =
                    r.elimFraction(ElimKind::Fold) * 100;
                const double l = (r.elimFraction(ElimKind::Cse) +
                                  r.elimFraction(ElimKind::Ra)) * 100;
                me.push_back(m);
                cf.push_back(c);
                csera.push_back(l);
                total.push_back(m + c + l);
                t.row({w->name, fmtDouble(m, 1), fmtDouble(c, 1),
                       fmtDouble(l, 1), fmtDouble(m + c + l, 1)});
            }
            t.row({"amean", fmtDouble(amean(me), 1),
                   fmtDouble(amean(cf), 1), fmtDouble(amean(csera), 1),
                   fmtDouble(amean(total), 1)});
            std::printf("\n%s:\n", suite_name.c_str());
            t.print();
        }
    }
    return 0;
}
