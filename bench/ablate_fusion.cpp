/**
 * @file
 * Ablation (paper section 3.3): what if fused operations are never
 * free? The paper assumes 3-input carry-save adders make add-add
 * fusion zero-cycle and predicts that charging every fused operation
 * an extra cycle would cost RENO_CF only 20-25% of its relative
 * advantage (1-2% absolute).
 *
 * Three configurations per suite: BASE, ME+CF with free add-add
 * fusion, ME+CF with 1-cycle fusion everywhere.
 */
#include "bench_util.hpp"

using namespace reno;
using namespace reno::bench;

int
main(int argc, char **argv)
{
    banner("Ablation: 3-input-adder (free) vs 2-cycle fusion",
           "RENO TR MS-CIS-04-28 / ISCA 2005, section 3.3 claim");

    CoreParams free_p;
    free_p.reno = RenoConfig::meCf();
    CoreParams slow_p = free_p;
    slow_p.freeAddAddFusion = false;
    const std::vector<NamedConfig> configs = {
        {"BASE", CoreParams::fourWide()},
        {"free", free_p},
        {"slow", slow_p},
    };

    sweep::Campaign campaign;
    for (const auto &[suite_name, workloads] : suites())
        campaign.addCross(workloads, configs);
    const sweep::CampaignResults results =
        campaign.run(options(argc, argv));

    for (const auto &[suite_name, workloads] : suites()) {
        TextTable t;
        t.header({"benchmark", "CF free-fusion", "CF slow-fusion",
                  "benefit kept%"});
        std::vector<double> mean_free, mean_slow;
        for (const Workload *w : workloads) {
            const std::uint64_t base =
                results.get(w->name, "BASE").sim.cycles;
            const double s_free = speedupPercent(
                base, results.get(w->name, "free").sim.cycles);
            const double s_slow = speedupPercent(
                base, results.get(w->name, "slow").sim.cycles);

            mean_free.push_back(s_free);
            mean_slow.push_back(s_slow);
            const double kept =
                s_free > 0.01 ? 100.0 * s_slow / s_free : 100.0;
            t.row({w->name, fmtDouble(s_free, 1), fmtDouble(s_slow, 1),
                   fmtDouble(kept, 0)});
        }
        const double kept = amean(mean_free) > 0.01
            ? 100.0 * amean(mean_slow) / amean(mean_free) : 100.0;
        t.row({"amean", fmtDouble(amean(mean_free), 1),
               fmtDouble(amean(mean_slow), 1), fmtDouble(kept, 0)});
        std::printf("\n%s (%% speedup over baseline; paper predicts "
                    "75-80%% of the benefit kept):\n",
                    suite_name.c_str());
        t.print();
    }
    return 0;
}
