/**
 * @file
 * Ablation (paper section 3.2, DESIGN.md section 6.4): the renaming
 * pipeline checks displacement overflow *conservatively*, comparing
 * the top two bits of the instruction immediate and the current
 * map-table displacement, because the exact 16-bit sum is not
 * available until the second rename stage. A conservative check
 * cancels some folds that an exact check would keep.
 *
 * This bench quantifies the cost: folds canceled, CF elimination rate
 * and speedup under the conservative check vs an exact 16-bit check.
 */
#include "bench_util.hpp"

using namespace reno;
using namespace reno::bench;

int
main(int argc, char **argv)
{
    banner("Ablation: conservative vs exact displacement-overflow check",
           "RENO TR MS-CIS-04-28 / ISCA 2005, section 3.2");

    CoreParams cons_p;
    cons_p.reno = RenoConfig::meCf();
    CoreParams exact_p = cons_p;
    exact_p.reno.exactOverflowCheck = true;
    const std::vector<NamedConfig> configs = {
        {"BASE", CoreParams::fourWide()},
        {"cons", cons_p},
        {"exact", exact_p},
    };

    sweep::Campaign campaign;
    for (const auto &[suite_name, workloads] : suites())
        campaign.addCross(workloads, configs);
    const sweep::CampaignResults results =
        campaign.run(options(argc, argv));

    for (const auto &[suite_name, workloads] : suites()) {
        TextTable t;
        t.header({"benchmark", "cons CF%", "exact CF%", "cons cancels",
                  "exact cancels", "cons speedup", "exact speedup"});
        std::vector<double> mean_cons, mean_exact;
        for (const Workload *w : workloads) {
            const std::uint64_t base =
                results.get(w->name, "BASE").sim.cycles;
            const SimResult cons = results.get(w->name, "cons").sim;
            const SimResult exact = results.get(w->name, "exact").sim;

            const double s_cons = speedupPercent(base, cons.cycles);
            const double s_exact = speedupPercent(base, exact.cycles);
            mean_cons.push_back(s_cons);
            mean_exact.push_back(s_exact);

            t.row({w->name,
                   fmtDouble(cons.elimFraction(ElimKind::Fold) * 100, 1),
                   fmtDouble(exact.elimFraction(ElimKind::Fold) * 100, 1),
                   std::to_string(cons.overflowCancels),
                   std::to_string(exact.overflowCancels),
                   fmtDouble(s_cons, 1), fmtDouble(s_exact, 1)});
        }
        t.row({"amean", "", "", "", "", fmtDouble(amean(mean_cons), 1),
               fmtDouble(amean(mean_exact), 1)});
        std::printf("\n%s (conservative check should cancel more folds "
                    "but cost almost no performance):\n",
                    suite_name.c_str());
        t.print();
    }
    return 0;
}
