/**
 * @file
 * Figure 8 (bottom): percentage speedup over the RENO-less baseline
 * for the cumulative configurations ME, ME+CF and full RENO, on the
 * 4-wide and 6-wide machines.
 *
 * Paper shape targets: full RENO averages +8% on SPECint and +13% on
 * MediaBench at 4-wide; lower (6% / 11%) at 6-wide; ME and ME+CF
 * alone deliver roughly half the benefit.
 */
#include "bench_util.hpp"

using namespace reno;
using namespace reno::bench;

int
main(int argc, char **argv)
{
    banner("Figure 8 (bottom): % speedup over baseline",
           "RENO TR MS-CIS-04-28 / ISCA 2005, Figure 8 bottom");

    // Declare the whole figure as one campaign: (4w, 6w) x build-up
    // x every workload. The baseline runs once per workload per
    // width; the engine deduplicates and parallelizes the rest.
    sweep::Campaign campaign;
    for (const unsigned width : {4u, 6u}) {
        const CoreParams machine = width == 6 ? CoreParams::sixWide()
                                              : CoreParams::fourWide();
        const std::string tag = strprintf("%uw", width);
        for (const auto &[suite_name, workloads] : suites())
            campaign.addCross(workloads, renoBuildup(machine), tag);
    }
    const sweep::CampaignResults results =
        campaign.run(options(argc, argv));

    for (const unsigned width : {4u, 6u}) {
        const CoreParams machine = width == 6 ? CoreParams::sixWide()
                                              : CoreParams::fourWide();
        const auto configs = renoBuildup(machine);
        const std::string tag = strprintf("%uw", width);
        std::printf("\n--- %u-wide machine ---\n", width);
        for (const auto &[suite_name, workloads] : suites()) {
            TextTable t;
            t.header({"benchmark", "ME", "ME+CF", "RENO"});
            std::vector<double> mean[3];
            for (const Workload *w : workloads) {
                const std::uint64_t base =
                    results.get(w->name, configs[0].name, tag)
                        .sim.cycles;
                std::vector<std::string> row{w->name};
                for (int c = 1; c <= 3; ++c) {
                    const std::uint64_t cyc =
                        results.get(w->name, configs[c].name, tag)
                            .sim.cycles;
                    const double s = speedupPercent(base, cyc);
                    mean[c - 1].push_back(s);
                    row.push_back(fmtDouble(s, 1));
                }
                t.row(row);
            }
            t.row({"amean", fmtDouble(amean(mean[0]), 1),
                   fmtDouble(amean(mean[1]), 1),
                   fmtDouble(amean(mean[2]), 1)});
            std::printf("\n%s (%% speedup):\n", suite_name.c_str());
            t.print();
        }
    }
    return 0;
}
