/**
 * @file
 * Figure 11 (top): RENO compensating for physical register file
 * reductions. Performance of {96, 112, 128, 160} physical registers
 * under BASE, ME+CF, and full RENO, normalized to the 160-register
 * RENO-less baseline (= 100).
 *
 * Paper shape targets: ME+CF alone compensates for a reduction from
 * 160 to 112 registers; adding CSE+RA tolerates 96.
 */
#include "bench_util.hpp"

using namespace reno;
using namespace reno::bench;

int
main(int argc, char **argv)
{
    banner("Figure 11 (top): RENO vs physical register file size",
           "RENO TR MS-CIS-04-28 / ISCA 2005, Figure 11 top");

    const std::vector<std::pair<std::string, RenoConfig>> configs = {
        {"BASE", RenoConfig::baseline()},
        {"CF+ME", RenoConfig::meCf()},
        {"RA+CSE", RenoConfig::full()},
    };
    const std::vector<unsigned> sizes = {96, 112, 128, 160};

    // Reference (the 160-preg RENO-less default) plus the full
    // config x size cross-product, as one deduplicated campaign: the
    // 160-preg BASE jobs are content-identical to the reference.
    sweep::Campaign campaign;
    for (const auto &[suite_name, workloads] : suites()) {
        for (const Workload *w : workloads) {
            campaign.add(*w, {"ref", CoreParams{}});
            for (const auto &[cfg_name, reno_cfg] : configs) {
                for (const unsigned size : sizes) {
                    CoreParams p;
                    p.numPregs = size;
                    p.reno = reno_cfg;
                    campaign.add(*w, {cfg_name, p},
                                 strprintf("%u", size));
                }
            }
        }
    }
    const sweep::CampaignResults results =
        campaign.run(options(argc, argv));

    for (const auto &[suite_name, workloads] : suites()) {
        TextTable t;
        std::vector<std::string> header{"config"};
        for (const unsigned s : sizes)
            header.push_back(strprintf("%u pregs", s));
        t.header(header);

        for (const auto &[cfg_name, reno_cfg] : configs) {
            std::vector<std::string> row{cfg_name};
            for (const unsigned size : sizes) {
                std::vector<double> rel;
                for (const Workload *w : workloads) {
                    const std::uint64_t ref =
                        results.get(w->name, "ref").sim.cycles;
                    const std::uint64_t cyc =
                        results.get(w->name, cfg_name,
                                    strprintf("%u", size)).sim.cycles;
                    rel.push_back(100.0 * double(ref) / double(cyc));
                }
                row.push_back(fmtDouble(amean(rel), 1));
            }
            t.row(row);
        }
        std::printf("\n%s (performance, 160-preg baseline = 100):\n",
                    suite_name.c_str());
        t.print();
    }
    return 0;
}
