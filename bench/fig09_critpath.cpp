/**
 * @file
 * Figure 9: critical-path breakdown (fetch / alu exec / load exec /
 * load mem / commit) for the baseline, ME+CF, and full RENO, on a
 * selection of benchmarks from each suite (the paper plots 8-9 per
 * suite).
 *
 * Paper shape targets: MediaBench is markedly more ALU-critical than
 * SPECint; SPECint is more load/memory-critical; RENO shrinks the
 * exec components and often grows the relative fetch component.
 */
#include "bench_util.hpp"

using namespace reno;
using namespace reno::bench;

namespace
{

void
runSelection(const std::vector<std::string> &names)
{
    const std::vector<std::pair<std::string, RenoConfig>> configs = {
        {"BASE", RenoConfig::baseline()},
        {"ME+CF", RenoConfig::meCf()},
        {"RENO", RenoConfig::full()},
    };
    TextTable t;
    t.header({"benchmark", "config", "fetch%", "alu%", "load%",
              "mem%", "commit%"});
    for (const std::string &name : names) {
        const Workload &w = workloadByName(name);
        for (const auto &[cfg_name, reno_cfg] : configs) {
            CoreParams params;
            params.reno = reno_cfg;
            CriticalPathAnalyzer cpa(1'000'000, params.robEntries,
                                     params.iqEntries);
            runWorkload(w, params, &cpa);
            const auto b = cpa.breakdown();
            t.row({name, cfg_name, fmtDouble(b[0] * 100, 1),
                   fmtDouble(b[1] * 100, 1), fmtDouble(b[2] * 100, 1),
                   fmtDouble(b[3] * 100, 1),
                   fmtDouble(b[4] * 100, 1)});
        }
    }
    t.print();
}

} // namespace

int
main()
{
    banner("Figure 9: critical-path breakdown",
           "RENO TR MS-CIS-04-28 / ISCA 2005, Figure 9");

    // The paper's Figure 9 selections: crafty, eon.k, gap, gzip,
    // parser, perl.s, vortex, vpr.r / adpcm.de, epic, g721.en,
    // gsm.de, jpg.de, mesa.m, mesa.t, mpg2.en, pegw.en.
    std::printf("\nSPECint-like selection:\n");
    runSelection({"crafty", "eon.k", "gap", "gzip", "parser",
                  "perl.s", "vortex", "vpr.r"});
    std::printf("\nMediaBench-like selection:\n");
    runSelection({"adpcm.dec", "epic", "g721.enc", "gsm.dec",
                  "jpeg.dec", "mesa.m", "mesa.t", "mpeg2.enc",
                  "pegw.enc"});
    return 0;
}
