/**
 * @file
 * Figure 9: critical-path breakdown (fetch / alu exec / load exec /
 * load mem / commit) for the baseline, ME+CF, and full RENO, on a
 * selection of benchmarks from each suite (the paper plots 8-9 per
 * suite).
 *
 * Paper shape targets: MediaBench is markedly more ALU-critical than
 * SPECint; SPECint is more load/memory-critical; RENO shrinks the
 * exec components and often grows the relative fetch component.
 */
#include "bench_util.hpp"

using namespace reno;
using namespace reno::bench;

namespace
{

std::vector<NamedConfig>
figureConfigs()
{
    const CoreParams machine = CoreParams::fourWide();
    return {
        {"BASE", withReno(machine, RenoConfig::baseline())},
        {"ME+CF", withReno(machine, RenoConfig::meCf())},
        {"RENO", withReno(machine, RenoConfig::full())},
    };
}

void
declareSelection(sweep::Campaign &campaign,
                 const std::vector<std::string> &names)
{
    for (const std::string &name : names) {
        for (const NamedConfig &cfg : figureConfigs()) {
            campaign.add(workloadByName(name), cfg, "",
                         /*want_cpa=*/true);
        }
    }
}

void
printSelection(const sweep::CampaignResults &results,
               const std::vector<std::string> &names)
{
    TextTable t;
    t.header({"benchmark", "config", "fetch%", "alu%", "load%",
              "mem%", "commit%"});
    for (const std::string &name : names) {
        for (const NamedConfig &cfg : figureConfigs()) {
            const auto b =
                results.get(name, cfg.name).cpaBreakdown();
            t.row({name, cfg.name, fmtDouble(b[0] * 100, 1),
                   fmtDouble(b[1] * 100, 1), fmtDouble(b[2] * 100, 1),
                   fmtDouble(b[3] * 100, 1),
                   fmtDouble(b[4] * 100, 1)});
        }
    }
    t.print();
}

} // namespace

int
main(int argc, char **argv)
{
    banner("Figure 9: critical-path breakdown",
           "RENO TR MS-CIS-04-28 / ISCA 2005, Figure 9");

    // The paper's Figure 9 selections: crafty, eon.k, gap, gzip,
    // parser, perl.s, vortex, vpr.r / adpcm.de, epic, g721.en,
    // gsm.de, jpg.de, mesa.m, mesa.t, mpg2.en, pegw.en.
    const std::vector<std::string> spec_sel = {
        "crafty", "eon.k", "gap", "gzip", "parser", "perl.s",
        "vortex", "vpr.r"};
    const std::vector<std::string> media_sel = {
        "adpcm.dec", "epic", "g721.enc", "gsm.dec", "jpeg.dec",
        "mesa.m", "mesa.t", "mpeg2.enc", "pegw.enc"};

    sweep::Campaign campaign;
    declareSelection(campaign, spec_sel);
    declareSelection(campaign, media_sel);
    const sweep::CampaignResults results =
        campaign.run(options(argc, argv));

    std::printf("\nSPECint-like selection:\n");
    printSelection(results, spec_sel);
    std::printf("\nMediaBench-like selection:\n");
    printSelection(results, media_sel);
    return 0;
}
