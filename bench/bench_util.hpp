/**
 * @file
 * Shared helpers for the per-figure benchmark binaries. Each binary is
 * a thin campaign description: it declares its (workload x config)
 * jobs, hands them to the sweep engine (worker thread pool +
 * content-addressed result cache), and formats the submission-ordered
 * results into the paper's tables.
 *
 * Every binary accepts the engine's standard flags:
 *   --jobs N        worker threads (default: RENO_JOBS or all cores)
 *   --cache-dir D   persist results; a warm cache skips simulation
 *   --sweep-stats   print an execution summary to stderr
 */
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "sweep/campaign.hpp"

namespace reno::bench
{

/** Print a figure banner. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("==================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("(reproduces %s)\n", paper_ref.c_str());
    std::printf("==================================================\n");
}

/** Workloads of a suite plus the suite label. */
inline std::vector<std::pair<std::string,
                             std::vector<const Workload *>>>
suites()
{
    return benchmarkSuites();
}

/** Engine options from the binary's command line. */
inline sweep::CampaignOptions
options(int argc, char **argv)
{
    return sweep::parseCampaignArgs(argc, argv);
}

} // namespace reno::bench
