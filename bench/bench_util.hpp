/**
 * @file
 * Shared helpers for the per-figure benchmark binaries: suite
 * iteration with per-suite mean rows, and cached baseline runs.
 */
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"

namespace reno::bench
{

/** Print a figure banner. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("==================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("(reproduces %s)\n", paper_ref.c_str());
    std::printf("==================================================\n");
}

/** Workloads of a suite plus the suite label. */
inline std::vector<std::pair<std::string,
                             std::vector<const Workload *>>>
suites()
{
    return {
        {"SPECint-like", suiteWorkloads("spec")},
        {"MediaBench-like", suiteWorkloads("media")},
    };
}

/** Cache of simulation results keyed by (workload, config name). */
class RunCache
{
  public:
    const SimResult &
    get(const Workload &w, const std::string &key,
        const CoreParams &params)
    {
        const std::string id = w.name + "/" + key;
        auto it = cache_.find(id);
        if (it == cache_.end())
            it = cache_.emplace(id, runWorkload(w, params).sim).first;
        return it->second;
    }

  private:
    std::map<std::string, SimResult> cache_;
};

} // namespace reno::bench
