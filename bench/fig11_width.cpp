/**
 * @file
 * Figure 11 (bottom): RENO compensating for issue-width reductions.
 * Performance of the i2t2 (2 integer / 2 total), i2t3 and i3t4 issue
 * configurations under BASE, CF+ME and full RENO, normalized to the
 * full-width (3 integer / 6 total) RENO-less baseline (= 100).
 *
 * Paper shape targets: CF+ME compensates for losing one issue slot
 * and an ALU (i3t4 -> even with baseline or better); full RENO on
 * 3-wide beats the 4-wide baseline on SPEC; a 50% issue cut (i2t2)
 * cannot be fully recovered but comes within several percent.
 */
#include "bench_util.hpp"

using namespace reno;
using namespace reno::bench;

int
main(int argc, char **argv)
{
    banner("Figure 11 (bottom): RENO vs issue width",
           "RENO TR MS-CIS-04-28 / ISCA 2005, Figure 11 bottom");

    const std::vector<std::pair<std::string, RenoConfig>> configs = {
        {"BASE", RenoConfig::baseline()},
        {"CF+ME", RenoConfig::meCf()},
        {"RA+CSE", RenoConfig::full()},
    };
    const std::vector<std::pair<std::string, CoreParams>> widths = {
        {"i2t2", CoreParams::issueReduced(2, 2)},
        {"i2t3", CoreParams::issueReduced(2, 3)},
        {"i3t4", CoreParams::issueReduced(3, 4)},
    };

    sweep::Campaign campaign;
    for (const auto &[suite_name, workloads] : suites()) {
        for (const Workload *w : workloads) {
            campaign.add(*w, {"ref", CoreParams::fourWide()});
            for (const auto &[cfg_name, reno_cfg] : configs) {
                for (const auto &[width_name, width_params] : widths) {
                    CoreParams p = width_params;
                    p.reno = reno_cfg;
                    campaign.add(*w, {cfg_name, p}, width_name);
                }
            }
        }
    }
    const sweep::CampaignResults results =
        campaign.run(options(argc, argv));

    for (const auto &[suite_name, workloads] : suites()) {
        TextTable t;
        t.header({"config", "i2t2", "i2t3", "i3t4"});

        for (const auto &[cfg_name, reno_cfg] : configs) {
            std::vector<std::string> row{cfg_name};
            for (const auto &[width_name, width_params] : widths) {
                std::vector<double> rel;
                for (const Workload *w : workloads) {
                    const std::uint64_t ref =
                        results.get(w->name, "ref").sim.cycles;
                    const std::uint64_t cyc =
                        results.get(w->name, cfg_name, width_name)
                            .sim.cycles;
                    rel.push_back(100.0 * double(ref) / double(cyc));
                }
                row.push_back(fmtDouble(amean(rel), 1));
            }
            t.row(row);
        }
        std::printf("\n%s (performance, full-width baseline = 100):\n",
                    suite_name.c_str());
        t.print();
    }
    return 0;
}
