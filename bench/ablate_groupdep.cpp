/**
 * @file
 * Ablation (paper section 3.2, DESIGN.md section 6.3): RENO never
 * eliminates two *dependent* instructions renamed in the same cycle;
 * this keeps the output-selection mux linear rather than quadratic in
 * the rename width. The paper argues such pairs are rare (a compiler
 * would have folded them statically) but notes they become somewhat
 * more common at 6-wide rename.
 *
 * This bench counts the folds lost to the restriction (group-dependence
 * cancels) per 1000 retired instructions at 4- and 6-wide, alongside
 * the total elimination rate, making the Figure 8 "small drop from 4-
 * to 6-wide" directly measurable.
 */
#include "bench_util.hpp"

using namespace reno;
using namespace reno::bench;

namespace
{

double
perMille(std::uint64_t n, std::uint64_t retired)
{
    return retired ? 1000.0 * double(n) / double(retired) : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    banner("Ablation: dependent-elimination-per-cycle restriction",
           "RENO TR MS-CIS-04-28 / ISCA 2005, sections 3.2 and 4.2");

    CoreParams p4 = CoreParams::fourWide();
    p4.reno = RenoConfig::full();
    CoreParams p6 = CoreParams::sixWide();
    p6.reno = RenoConfig::full();
    const std::vector<NamedConfig> configs = {
        {"4w", p4},
        {"6w", p6},
    };

    sweep::Campaign campaign;
    for (const auto &[suite_name, workloads] : suites())
        campaign.addCross(workloads, configs);
    const sweep::CampaignResults results =
        campaign.run(options(argc, argv));

    for (const auto &[suite_name, workloads] : suites()) {
        TextTable t;
        t.header({"benchmark", "4w elim%", "4w cancels/1k",
                  "6w elim%", "6w cancels/1k"});
        std::vector<double> c4s, c6s;
        for (const Workload *w : workloads) {
            const SimResult r4 = results.get(w->name, "4w").sim;
            const SimResult r6 = results.get(w->name, "6w").sim;

            const double c4 = perMille(r4.groupDepCancels, r4.retired);
            const double c6 = perMille(r6.groupDepCancels, r6.retired);
            c4s.push_back(c4);
            c6s.push_back(c6);
            t.row({w->name,
                   fmtDouble(r4.elimFraction() * 100, 1),
                   fmtDouble(c4, 2),
                   fmtDouble(r6.elimFraction() * 100, 1),
                   fmtDouble(c6, 2)});
        }
        t.row({"amean", "", fmtDouble(amean(c4s), 2), "",
               fmtDouble(amean(c6s), 2)});
        std::printf("\n%s (the 6-wide machine should lose slightly "
                    "more folds to the restriction):\n",
                    suite_name.c_str());
        t.print();
    }
    return 0;
}
