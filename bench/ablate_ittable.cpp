/**
 * @file
 * Ablation (paper section 2.4): integration-table size and policy.
 * The loads-only division of labor halves the required IT size and
 * cuts its bandwidth while keeping peak collapsing rates. This sweep
 * measures elimination rate, IT accesses and speedup across table
 * sizes for the loads-only and full-IT policies.
 */
#include "bench_util.hpp"

using namespace reno;
using namespace reno::bench;

namespace
{

std::string
policyTag(bool loads_only, unsigned entries)
{
    return strprintf("%s/%u", loads_only ? "loads" : "full", entries);
}

} // namespace

int
main(int argc, char **argv)
{
    banner("Ablation: integration table size and policy",
           "RENO TR MS-CIS-04-28 / ISCA 2005, section 2.4 claims");

    const std::vector<unsigned> sizes = {128, 256, 512, 1024};

    // One campaign for the whole sweep: per workload, one baseline
    // plus the 2-policy x 4-size cross-product.
    sweep::Campaign campaign;
    for (const auto &[suite_name, workloads] : suites()) {
        for (const Workload *w : workloads) {
            campaign.add(*w, {"BASE", CoreParams::fourWide()});
            for (const bool loads_only : {true, false}) {
                for (const unsigned entries : sizes) {
                    CoreParams p;
                    p.reno = loads_only ? RenoConfig::full()
                                        : RenoConfig::fullIt();
                    p.reno.it.entries = entries;
                    campaign.add(*w, {"IT", p},
                                 policyTag(loads_only, entries));
                }
            }
        }
    }
    const sweep::CampaignResults results =
        campaign.run(options(argc, argv));

    for (const auto &[suite_name, workloads] : suites()) {
        TextTable t;
        t.header({"policy", "IT entries", "speedup%", "loads elim%",
                  "IT accesses/1k insts"});
        for (const bool loads_only : {true, false}) {
            for (const unsigned entries : sizes) {
                std::vector<double> speedups, load_elims, accesses;
                for (const Workload *w : workloads) {
                    const std::uint64_t base =
                        results.get(w->name, "BASE").sim.cycles;
                    const SimResult r =
                        results.get(w->name, "IT",
                                    policyTag(loads_only, entries))
                            .sim;
                    speedups.push_back(
                        speedupPercent(base, r.cycles));
                    load_elims.push_back(
                        (r.elimFraction(ElimKind::Cse) +
                         r.elimFraction(ElimKind::Ra)) * 100);
                    accesses.push_back(1000.0 * double(r.itAccesses) /
                                       double(r.retired));
                }
                t.row({loads_only ? "loads-only" : "full",
                       strprintf("%u", entries),
                       fmtDouble(amean(speedups), 1),
                       fmtDouble(amean(load_elims), 1),
                       fmtDouble(amean(accesses), 0)});
            }
        }
        std::printf("\n%s:\n", suite_name.c_str());
        t.print();
    }
    return 0;
}
