/**
 * @file
 * Ablation (paper section 2.4): integration-table size and policy.
 * The loads-only division of labor halves the required IT size and
 * cuts its bandwidth while keeping peak collapsing rates. This sweep
 * measures elimination rate, IT accesses and speedup across table
 * sizes for the loads-only and full-IT policies.
 */
#include "bench_util.hpp"

using namespace reno;
using namespace reno::bench;

int
main()
{
    banner("Ablation: integration table size and policy",
           "RENO TR MS-CIS-04-28 / ISCA 2005, section 2.4 claims");

    const std::vector<unsigned> sizes = {128, 256, 512, 1024};

    for (const auto &[suite_name, workloads] : suites()) {
        TextTable t;
        t.header({"policy", "IT entries", "speedup%", "loads elim%",
                  "IT accesses/1k insts"});
        for (const bool loads_only : {true, false}) {
            for (const unsigned entries : sizes) {
                std::vector<double> speedups, load_elims, accesses;
                for (const Workload *w : workloads) {
                    const std::uint64_t base =
                        runWorkload(*w, CoreParams::fourWide())
                            .sim.cycles;
                    CoreParams p;
                    p.reno = loads_only ? RenoConfig::full()
                                        : RenoConfig::fullIt();
                    p.reno.it.entries = entries;
                    const SimResult r = runWorkload(*w, p).sim;
                    speedups.push_back(
                        speedupPercent(base, r.cycles));
                    load_elims.push_back(
                        (r.elimFraction(ElimKind::Cse) +
                         r.elimFraction(ElimKind::Ra)) * 100);
                    accesses.push_back(1000.0 * double(r.itAccesses) /
                                       double(r.retired));
                }
                t.row({loads_only ? "loads-only" : "full",
                       strprintf("%u", entries),
                       fmtDouble(amean(speedups), 1),
                       fmtDouble(amean(load_elims), 1),
                       fmtDouble(amean(accesses), 0)});
            }
        }
        std::printf("\n%s:\n", suite_name.c_str());
        t.print();
    }
    return 0;
}
