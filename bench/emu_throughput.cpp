/**
 * @file
 * Functional-emulator throughput microbenchmark: per-step interpreter
 * vs. pre-decoded superblock execution (src/emu/decoded.hpp) on a
 * workload suite, reported as Minstr/s with per-workload and geomean
 * speedups, and emitted as a BENCH_emu.json artifact (the CI
 * fast-forward speedup gate reads "geomean_speedup").
 *
 * Every decoded-mode run is checked bit-exact against the interpreter
 * (output bytes, instruction count, exit code, memory digest) before
 * any timing is reported, so the artifact doubles as an equivalence
 * gate.
 *
 * usage: emu_throughput [--suite S] [--repeat N] [--out FILE]
 *   --suite S    workload suite to time (default synth)
 *   --repeat N   timed repetitions per mode; best-of-N (default 3)
 *   --out FILE   JSON artifact path (default BENCH_emu.json)
 */
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "emu/emulator.hpp"
#include "harness/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace reno;

namespace
{

struct Row {
    std::string name;
    std::uint64_t insts = 0;
    double interpSec = 0.0;
    double decodedSec = 0.0;
    std::uint64_t blocks = 0;
    std::uint64_t superblocks = 0;
    double hitRate = 0.0;

    double interpMips() const { return insts / interpSec / 1e6; }
    double decodedMips() const { return insts / decodedSec / 1e6; }
    double speedup() const { return interpSec / decodedSec; }
};

struct RunResult {
    std::string output;
    std::uint64_t insts = 0;
    std::uint64_t exitCode = 0;
    std::uint64_t memDigest = 0;
    double seconds = 0.0;
    BlockCacheStats stats;
};

RunResult
timedRun(const Workload &w, bool decoded)
{
    const Program &prog = assembleWorkload(w);
    Emulator::Options opts;
    opts.randSeed = w.seed;
    opts.decodedExec = decoded;
    Emulator emu(prog, opts);

    const auto t0 = std::chrono::steady_clock::now();
    emu.run();
    const auto t1 = std::chrono::steady_clock::now();

    RunResult r;
    r.output = emu.output();
    r.insts = emu.instCount();
    r.exitCode = emu.exitCode();
    r.memDigest = emu.memory().digest();
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    r.stats = emu.blockStats();
    return r;
}

void
checkEquivalent(const std::string &name, const RunResult &interp,
                const RunResult &decoded)
{
    if (interp.output != decoded.output)
        fatal("%s: decoded output differs from interpreter",
              name.c_str());
    if (interp.insts != decoded.insts)
        fatal("%s: decoded instruction count %llu != interpreter %llu",
              name.c_str(),
              static_cast<unsigned long long>(decoded.insts),
              static_cast<unsigned long long>(interp.insts));
    if (interp.exitCode != decoded.exitCode)
        fatal("%s: decoded exit code differs", name.c_str());
    if (interp.memDigest != decoded.memDigest)
        fatal("%s: decoded memory digest 0x%llx != interpreter 0x%llx",
              name.c_str(),
              static_cast<unsigned long long>(decoded.memDigest),
              static_cast<unsigned long long>(interp.memDigest));
}

void
writeJson(const std::string &path, const std::string &suite,
          unsigned repeat, const std::vector<Row> &rows,
          double geomean)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot write %s", path.c_str());
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"emu_throughput\",\n");
    std::fprintf(f, "  \"suite\": \"%s\",\n", suite.c_str());
    std::fprintf(f, "  \"repeat\": %u,\n", repeat);
    std::fprintf(f, "  \"workloads\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(f, "    {\"name\": \"%s\", \"insts\": %llu, "
                        "\"interp_seconds\": %.6f, "
                        "\"decoded_seconds\": %.6f, "
                        "\"interp_minstr_s\": %.2f, "
                        "\"decoded_minstr_s\": %.2f, "
                        "\"speedup\": %.3f, "
                        "\"blocks_decoded\": %llu, "
                        "\"superblocks_chained\": %llu, "
                        "\"block_hit_rate\": %.6f}%s\n",
                     r.name.c_str(),
                     static_cast<unsigned long long>(r.insts),
                     r.interpSec, r.decodedSec,
                     r.interpMips(), r.decodedMips(), r.speedup(),
                     static_cast<unsigned long long>(r.blocks),
                     static_cast<unsigned long long>(r.superblocks),
                     r.hitRate,
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"geomean_speedup\": %.3f\n", geomean);
    std::fprintf(f, "}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string suite = "synth";
    std::string out = "BENCH_emu.json";
    unsigned repeat = 3;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--suite")
            suite = value();
        else if (arg == "--out")
            out = value();
        else if (arg == "--repeat")
            repeat = static_cast<unsigned>(std::stoul(value()));
        else
            fatal("unknown flag %s (try --suite/--repeat/--out)",
                  arg.c_str());
    }
    if (repeat == 0)
        repeat = 1;

    const auto workloads = suiteWorkloads(suite);
    std::printf("emu_throughput: %zu '%s' workloads, best of %u "
                "(interpreter vs decoded superblocks)\n\n",
                workloads.size(), suite.c_str(), repeat);
    std::printf("%-24s %12s %10s %10s %8s\n", "workload", "insts",
                "interp", "decoded", "speedup");
    std::printf("%-24s %12s %10s %10s %8s\n", "", "", "Minstr/s",
                "Minstr/s", "");

    std::vector<Row> rows;
    double logSum = 0.0;
    for (const Workload *w : workloads) {
        Row row;
        row.name = w->name;
        row.interpSec = 1e300;
        row.decodedSec = 1e300;
        RunResult interp, decoded;
        for (unsigned rep = 0; rep < repeat; ++rep) {
            interp = timedRun(*w, /*decoded=*/false);
            decoded = timedRun(*w, /*decoded=*/true);
            checkEquivalent(w->name, interp, decoded);
            row.interpSec = std::min(row.interpSec, interp.seconds);
            row.decodedSec = std::min(row.decodedSec, decoded.seconds);
        }
        row.insts = interp.insts;
        row.blocks = decoded.stats.blocksDecoded;
        row.superblocks = decoded.stats.superblocksChained;
        row.hitRate = decoded.stats.hitRate();
        logSum += std::log(row.speedup());
        std::printf("%-24s %12llu %10.1f %10.1f %7.2fx\n",
                    row.name.c_str(),
                    static_cast<unsigned long long>(row.insts),
                    row.interpMips(), row.decodedMips(),
                    row.speedup());
        rows.push_back(row);
    }

    const double geomean =
        rows.empty() ? 1.0 : std::exp(logSum / rows.size());
    std::printf("\ngeomean speedup: %.2fx (all outputs bit-exact)\n",
                geomean);
    writeJson(out, suite, repeat, rows, geomean);
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
