/**
 * @file
 * Sampled-simulation throughput benchmark: sampled-vs-full wall-clock
 * speedup and worst-case IPC error (whole-machine and per-core) on a
 * workload suite at 1, 2 and 4 cores, emitted as a BENCH_sample.json
 * artifact. CI reads the per-core-count "speedup" and "max_err_pct"
 * fields to gate the multi-core sampling path (>= 5x, <= 5%); keeping
 * the artifact per PR tracks the perf trajectory, not just the gate.
 *
 * The config set is the paper's RENO build-up plus the
 * division-of-labor variants: they share one warm-config group, so a
 * single functional-warming pass per workload serves every config --
 * exactly the amortization the sampled campaign is designed around.
 *
 * usage: sample_throughput [--suite S] [--out FILE]
 *   --suite S    workload suite to sample (default multi)
 *   --out FILE   JSON artifact path (default BENCH_sample.json)
 */
#include <cstdio>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "harness/experiment.hpp"
#include "sample/sampler.hpp"
#include "uarch/params.hpp"
#include "workloads/workloads.hpp"

using namespace reno;

namespace
{

struct Variant {
    unsigned cores = 0;
    std::size_t configsRun = 0;
    double fullSeconds = 0.0;
    double sampledSeconds = 0.0;
    std::size_t fullSims = 0;
    std::size_t sampledSims = 0;
    double speedup = 0.0;
    double maxErrPct = 0.0;  //!< worst |err| incl. per-core slots
};

Variant
runVariant(const std::vector<const Workload *> &workloads,
           unsigned cores)
{
    const CoreParams base = CoreParams::fourWide();
    std::vector<NamedConfig> configs = renoBuildup(base);
    for (const NamedConfig &cfg : divisionOfLabor(base)) {
        if (cfg.name != "RENO")  // already in the build-up
            configs.push_back(cfg);
    }
    if (cores > 1) {
        for (NamedConfig &cfg : configs) {
            cfg.params.sys.numCores = cores;
            cfg.name += strprintf("/%uc", cores);
        }
    }

    sample::SampleOptions options;
    options.plan.intervals = 8;
    options.plan.warmupInsts = 4000;
    options.plan.measureInsts = 6000;
    // The exact cold stratum scales with the core count: interval
    // positions are aggregate retired instructions, so an N-core run
    // needs N times the cold coverage to span the same per-core
    // startup transient.
    options.plan.coldInsts = 30000ULL * cores;

    const sample::ValidationReport report =
        sample::validateSampling(workloads, configs, options);

    Variant v;
    v.cores = cores;
    v.configsRun = configs.size();
    v.fullSeconds = report.fullSeconds;
    v.sampledSeconds = report.sampledSeconds;
    v.fullSims = report.fullStats.simulated;
    v.sampledSims = report.sampledStats.simulated;
    v.speedup = report.speedup();
    v.maxErrPct = report.maxAbsErrorPct;
    return v;
}

void
writeJson(const std::string &path, const std::string &suite,
          const std::vector<Variant> &variants)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot write %s", path.c_str());
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"sample_throughput\",\n");
    std::fprintf(f, "  \"suite\": \"%s\",\n", suite.c_str());
    std::fprintf(f, "  \"variants\": [\n");
    for (std::size_t i = 0; i < variants.size(); ++i) {
        const Variant &v = variants[i];
        std::fprintf(
            f,
            "    {\"cores\": %u, \"configs\": %zu, "
            "\"full_seconds\": %.3f, \"sampled_seconds\": %.3f, "
            "\"full_sims\": %zu, \"sampled_sims\": %zu, "
            "\"speedup\": %.3f, \"max_err_pct\": %.3f}%s\n",
            v.cores, v.configsRun, v.fullSeconds, v.sampledSeconds,
            v.fullSims, v.sampledSims, v.speedup, v.maxErrPct,
            i + 1 < variants.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string suite = "multi";
    std::string out = "BENCH_sample.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--suite")
            suite = value();
        else if (arg == "--out")
            out = value();
        else
            fatal("unknown flag %s (try --suite/--out)", arg.c_str());
    }

    const auto workloads = suiteWorkloads(suite);
    std::printf("sample_throughput: %zu '%s' workloads, sampled vs "
                "full detail at 1/2/4 cores\n\n",
                workloads.size(), suite.c_str());
    std::printf("%-6s %8s %10s %13s %9s %12s\n", "cores", "configs",
                "full_s", "sampled_s", "speedup", "max_err_pct");

    std::vector<Variant> variants;
    for (const unsigned cores : {1u, 2u, 4u}) {
        const Variant v = runVariant(workloads, cores);
        std::printf("%-6u %8zu %10.2f %13.2f %8.1fx %11.2f%%\n",
                    v.cores, v.configsRun, v.fullSeconds,
                    v.sampledSeconds, v.speedup, v.maxErrPct);
        variants.push_back(v);
    }

    writeJson(out, suite, variants);
    std::printf("\nwrote %s\n", out.c_str());
    return 0;
}
