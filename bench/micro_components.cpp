/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's own components:
 * renamer throughput, integration-table lookup, cache access, branch
 * prediction and functional emulation speed. These measure the
 * simulator (host performance), not the simulated machine.
 */
#include <benchmark/benchmark.h>

#include "asm/assembler.hpp"
#include "bpred/predictor.hpp"
#include "emu/emulator.hpp"
#include "mem/hierarchy.hpp"
#include "reno/renamer.hpp"
#include "uarch/core.hpp"
#include "workloads/workloads.hpp"

using namespace reno;

static void
BM_RenamerFoldChain(benchmark::State &state)
{
    RenoRenamer ren(RenoConfig::meCf(), 256);
    std::uint64_t vals[NumLogRegs] = {};
    ren.initialize(vals);
    const Instruction addi = Instruction::ri(Opcode::ADDI, 2, 1, 1);
    std::uint64_t result = 0;
    for (auto _ : state) {
        ren.beginGroup();
        // Keep the displacement small so folding always succeeds.
        const RenameOut out =
            ren.rename(RenameIn{addi, ++result & 0xff});
        benchmark::DoNotOptimize(out);
        ren.retire(out);
        // Reset the chain occasionally to avoid overflow cancels.
        if ((result & 0xff) == 0) {
            const RenameOut reset = ren.rename(
                RenameIn{Instruction::rr(Opcode::ADD, 1, 1, 1), 0});
            ren.retire(reset);
            ren.rename(RenameIn{Instruction::rr(Opcode::ADD, 2, 1, 1),
                                0});
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RenamerFoldChain);

static void
BM_IntegrationTableLookup(benchmark::State &state)
{
    IntegrationTable it(ItParams{512, 2});
    for (unsigned i = 0; i < 256; ++i) {
        ItEntry e;
        e.op = Opcode::LDQ;
        e.imm = static_cast<std::int32_t>(i * 8);
        e.in1 = MapEntry{static_cast<PhysReg>(i % 64), 0};
        e.out = MapEntry{static_cast<PhysReg>(i % 64 + 64), 0};
        it.insert(e);
    }
    unsigned i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(it.lookup(
            Opcode::LDQ, static_cast<std::int32_t>((i % 256) * 8),
            MapEntry{static_cast<PhysReg>(i % 64), 0}, MapEntry{}));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntegrationTableLookup);

static void
BM_CacheAccess(benchmark::State &state)
{
    MemHierarchy mem;
    Cycle now = 0;
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.dataAccess(addr, now, false));
        addr = (addr + 32) & 0xffff;
        now += 2;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

static void
BM_BranchPredict(benchmark::State &state)
{
    BranchPredictor bp;
    const Instruction b = Instruction::branch(Opcode::BNE, 1, 4);
    Addr pc = 0x1000;
    bool taken = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bp.predict(pc, b));
        bp.update(pc, b, taken, taken ? pc + 20 : pc + 4);
        pc = 0x1000 + ((pc + 4) & 0xfff);
        taken = !taken;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredict);

static void
BM_FunctionalEmulation(benchmark::State &state)
{
    const Program prog = assemble(workloadByName("gsm.dec").source);
    for (auto _ : state) {
        Emulator emu(prog);
        benchmark::DoNotOptimize(emu.run());
    }
    state.SetItemsProcessed(state.iterations() * 317245);
}
BENCHMARK(BM_FunctionalEmulation)->Unit(benchmark::kMillisecond);

static void
BM_CycleSimulation(benchmark::State &state)
{
    const Program prog = assemble(workloadByName("gsm.dec").source);
    for (auto _ : state) {
        Emulator emu(prog);
        CoreParams params;
        params.reno = RenoConfig::full();
        Core core(params, emu);
        benchmark::DoNotOptimize(core.run().cycles);
    }
    state.SetItemsProcessed(state.iterations() * 317245);
}
BENCHMARK(BM_CycleSimulation)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
