/**
 * @file
 * reno-sweep: the campaign-engine command-line driver. Runs an ad-hoc
 * cross-product sweep (suites/workloads x named configurations) or one
 * of the repo's named figure campaigns, on all host cores, with the
 * content-addressed result cache, and reports through the pluggable
 * table/JSON/CSV reporters.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "emu/emulator.hpp"
#include "harness/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/session.hpp"
#include "sample/sampler.hpp"
#include "sweep/campaign.hpp"
#include "sweep/reporter.hpp"
#include "workloads/workloads.hpp"

using namespace reno;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "campaign selection:\n"
        "  --suite spec|media|synth|mem|branch|multi|all\n"
        "                           workloads to sweep (default all ="
        " the paper suites)\n"
        "  --workload NAME          one workload (repeatable)\n"
        "  --workloads GLOB         workloads matching a glob, from\n"
        "                           every suite (e.g. 'mem.stream.*')\n"
        "  --filter SUBSTR          keep matching workload names\n"
        "  --config NAME            preset (repeatable; default BASE,"
        " RENO), with optional memory variants (RENO/l3/pf-stride)\n"
        "  --width 4|6              machine width (default 4)\n"
        "  --cores N                run every config on an N-core\n"
        "                           MESI-coherent System (same as a\n"
        "                           /Nc config suffix; 1..8)\n"
        "  --cpa                    critical-path analysis per job\n"
        "                           (single-core only)\n"
        "  --emu interp|decoded     functional-emulator engine\n"
        "                           (default decoded superblocks;\n"
        "                           interp = per-step; bit-exact\n"
        "                           either way)\n"
        "\n"
        "sampled simulation (estimates instead of full runs):\n"
        "  --sample N               measured intervals per program\n"
        "  --warmup W               detailed warmup insts per interval"
        " (default 2000)\n"
        "  --measure M              measured insts per interval"
        " (default 5000)\n"
        "\n"
        "execution:\n"
        "  --jobs N                 worker threads (default: RENO_JOBS"
        " env, else all cores)\n"
        "  --cache-dir DIR          persistent result cache; a warm\n"
        "                           rerun performs zero simulations\n"
        "  --sweep-stats            execution summary on stderr\n"
        "\n"
        "output:\n"
        "  --report table|json|csv  reporter (default table)\n"
        "  --all-stats              report every named SimResult"
        " counter\n"
        "  --perf-json FILE         write wall-clock + aggregate IPC"
        " JSON\n"
        "                           (CI perf-smoke trend artifact)\n"
        "  --mem-json FILE          write per-cache-level aggregate\n"
        "                           miss-rate / write-back / prefetch\n"
        "                           JSON, plus coherence bus traffic\n"
        "  --bpred-json FILE        write per-workload branch MPKI /\n"
        "                           accuracy / mispredict-breakdown"
        " JSON\n"
        "  --multi-json FILE        write per-job coherence traffic\n"
        "                           (invalidations, interventions,\n"
        "                           upgrades) + per-core IPC JSON\n"
        "  --cpi-json FILE          write per-job CPI stacks + the\n"
        "                           campaign aggregate (requires\n"
        "                           --cpi-stack; full simulations"
        " only)\n"
        "  --cpi-html FILE          write a self-contained HTML report\n"
        "                           (stacked bars per job, hotspot\n"
        "                           tables; requires --cpi-stack)\n"
        "\n"
        "observability (off by default; results are byte-identical\n"
        "either way):\n"
        "  --trace-out FILE         record a Chrome trace-event /\n"
        "                           Perfetto JSON of the run (open at\n"
        "                           ui.perfetto.dev)\n"
        "  --trace-sample N         + sample pipeline counters every N\n"
        "                           simulated cycles\n"
        "  --metrics-json FILE      write engine metrics (job latency,\n"
        "                           queue wait, pool utilization,\n"
        "                           cache hit ratio, phase rates)\n"
        "  --progress[=FILE]        stream NDJSON progress heartbeats\n"
        "                           (default sink: stderr)\n"
        "  --cpi-stack              per-cycle CPI-stack accounting\n"
        "                           (every commit-stage cycle lands in\n"
        "                           exactly one bucket)\n"
        "  --profile-hot[=N]        per-PC hotspot profiling, top N\n"
        "                           (default 20)\n"
        "  --pipetrace[=FILE]       retired-instruction pipeline\n"
        "                           diagrams (default sink: stderr)\n"
        "  --list                   list workloads/configs and exit\n"
        "  --list-configs           list configuration presets and"
        " exit\n"
        "  --list-suites            list workload suites and exit\n");
    std::exit(0);
}

void
listEverything()
{
    std::printf("workloads:\n");
    for (const Workload &w : allWorkloads())
        std::printf("  %-10s (%s, seed %llu)\n", w.name.c_str(),
                    w.suite.c_str(),
                    static_cast<unsigned long long>(w.seed));
    std::fputs(renderConfigList().c_str(), stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string suite = "all";
    std::string filter;
    std::string workloads_glob;
    std::vector<std::string> workload_names;
    std::vector<std::string> config_names;
    unsigned width = 4;
    bool want_cpa = false;
    std::uint64_t sample_intervals = 0;  //!< 0 = full simulation
    bool plan_tuned = false;  //!< --warmup/--measure given
    sample::SamplePlan plan;
    sweep::ReportFormat format = sweep::ReportFormat::Table;
    bool all_stats = false;
    std::string perf_json;
    std::string mem_json;
    std::string bpred_json;
    std::string multi_json;
    std::string cpi_json;
    std::string cpi_html;
    unsigned cores = 0;  //!< 0 = leave configs as parsed

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            const std::string prefix = std::string(flag) + "=";
            if (arg.rfind(prefix, 0) == 0)
                return arg.substr(prefix.size());
            if (i + 1 >= argc)
                fatal("%s expects a value", flag);
            return argv[++i];
        };
        auto matches = [&](const char *flag) {
            return arg == flag ||
                   arg.rfind(std::string(flag) + "=", 0) == 0;
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else if (arg == "--list") {
            listEverything();
            return 0;
        } else if (arg == "--list-configs") {
            std::fputs(renderConfigList().c_str(), stdout);
            return 0;
        } else if (arg == "--list-suites") {
            std::fputs(renderSuiteList().c_str(), stdout);
            return 0;
        } else if (arg == "--all-stats") {
            all_stats = true;
        } else if (matches("--perf-json")) {
            perf_json = value("--perf-json");
            if (perf_json.empty())
                fatal("--perf-json expects a file path");
        } else if (matches("--mem-json")) {
            mem_json = value("--mem-json");
            if (mem_json.empty())
                fatal("--mem-json expects a file path");
        } else if (matches("--bpred-json")) {
            bpred_json = value("--bpred-json");
            if (bpred_json.empty())
                fatal("--bpred-json expects a file path");
        } else if (matches("--multi-json")) {
            multi_json = value("--multi-json");
            if (multi_json.empty())
                fatal("--multi-json expects a file path");
        } else if (matches("--cpi-json")) {
            cpi_json = value("--cpi-json");
            if (cpi_json.empty())
                fatal("--cpi-json expects a file path");
        } else if (matches("--cpi-html")) {
            cpi_html = value("--cpi-html");
            if (cpi_html.empty())
                fatal("--cpi-html expects a file path");
        } else if (matches("--cores")) {
            const std::string v = value("--cores");
            char *end = nullptr;
            const unsigned long n = std::strtoul(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0' || n == 0 ||
                n > SysParams::MaxCores)
                fatal("--cores expects 1..%u, got '%s'",
                      SysParams::MaxCores, v.c_str());
            cores = static_cast<unsigned>(n);
        } else if (matches("--suite")) {
            suite = value("--suite");
        } else if (matches("--workload")) {
            workload_names.push_back(value("--workload"));
        } else if (matches("--workloads")) {
            workloads_glob = value("--workloads");
            if (workloads_glob.empty())
                fatal("--workloads expects a glob pattern");
        } else if (matches("--filter")) {
            filter = value("--filter");
        } else if (matches("--config")) {
            config_names.push_back(value("--config"));
        } else if (matches("--width")) {
            const std::string v = value("--width");
            if (v == "4")
                width = 4;
            else if (v == "6")
                width = 6;
            else
                fatal("--width expects 4 or 6, got '%s'", v.c_str());
        } else if (arg == "--cpa") {
            want_cpa = true;
        } else if (matches("--emu")) {
            const std::string v = value("--emu");
            if (v == "interp")
                setDefaultDecodedExec(false);
            else if (v == "decoded")
                setDefaultDecodedExec(true);
            else
                fatal("--emu expects interp or decoded, got '%s'",
                      v.c_str());
        } else if (matches("--sample")) {
            const std::string v = value("--sample");
            char *end = nullptr;
            sample_intervals = std::strtoull(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0' ||
                sample_intervals == 0)
                fatal("--sample expects a positive interval count, "
                      "got '%s'",
                      v.c_str());
        } else if (matches("--warmup")) {
            const std::string v = value("--warmup");
            char *end = nullptr;
            plan.warmupInsts = std::strtoull(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0')
                fatal("--warmup expects an integer, got '%s'",
                      v.c_str());
            plan_tuned = true;
        } else if (matches("--measure")) {
            const std::string v = value("--measure");
            char *end = nullptr;
            plan.measureInsts = std::strtoull(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0' ||
                plan.measureInsts == 0)
                fatal("--measure expects a positive count, got '%s'",
                      v.c_str());
            plan_tuned = true;
        } else if (matches("--report")) {
            const std::string v = value("--report");
            const auto f = sweep::reportFormatFromName(v);
            if (!f)
                fatal("--report expects table, json or csv, got '%s'",
                      v.c_str());
            format = *f;
        } else if (bool takes_value;
                   sweep::isCampaignFlag(arg, &takes_value)) {
            // Engine flags; parsed by parseCampaignArgs below.
            if (takes_value)
                ++i;
        } else if (bool takes_value;
                   obs::isObsFlag(arg, &takes_value)) {
            // Observability flags; parsed by parseObsArgs below.
            if (takes_value)
                ++i;
        } else {
            fatal("unknown argument '%s' (try --help)", arg.c_str());
        }
    }

    // Workload set.
    std::vector<const Workload *> workloads;
    if (!workloads_glob.empty()) {
        if (!workload_names.empty())
            fatal("--workloads and --workload are exclusive");
        workloads = workloadsMatching(workloads_glob, suite);
    } else if (!workload_names.empty()) {
        for (const std::string &name : workload_names)
            workloads.push_back(&workloadByName(name));
    } else if (suite == "all") {
        for (const Workload &w : allWorkloads())
            workloads.push_back(&w);
    } else {
        workloads = suiteWorkloads(suite);
    }
    if (!filter.empty()) {
        std::vector<const Workload *> kept;
        for (const Workload *w : workloads) {
            if (w->name.find(filter) != std::string::npos)
                kept.push_back(w);
        }
        workloads = kept;
    }
    if (workloads.empty())
        fatal("no workloads selected");

    // Configuration set.
    const CoreParams base =
        width == 6 ? CoreParams::sixWide() : CoreParams::fourWide();
    if (config_names.empty())
        config_names = {"BASE", "RENO"};
    std::vector<NamedConfig> configs;
    for (const std::string &name : config_names) {
        NamedConfig cfg;
        if (!configByName(name, base, &cfg)) {
            std::string known;
            for (const std::string &k : knownConfigNames())
                known += " " + k;
            fatal("unknown config '%s' (known:%s)", name.c_str(),
                  known.c_str());
        }
        configs.push_back(cfg);
    }
    if (cores > 1) {
        // Equivalent to a /Nc suffix on every selected config; the
        // suffix keeps multi-core rows distinguishable in reports.
        for (NamedConfig &cfg : configs) {
            if (cfg.params.sys.numCores > 1)
                fatal("--cores conflicts with config '%s' (already "
                      "runs %u cores)",
                      cfg.name.c_str(), cfg.params.sys.numCores);
            cfg.params.sys.numCores = cores;
            cfg.name += strprintf("/%uc", cores);
        }
    }

    const sweep::CampaignOptions opts =
        sweep::parseCampaignArgs(argc, argv);
    const obs::ObsOptions obs_opts = obs::parseObsArgs(argc, argv);
    const obs::Session obs_session(obs_opts);

    if ((!cpi_json.empty() || !cpi_html.empty()) && !obs_opts.cpiStack)
        fatal("--cpi-json/--cpi-html require --cpi-stack");
    if (plan_tuned && sample_intervals == 0)
        fatal("--warmup/--measure require --sample");
    if (sample_intervals > 0) {
        if (want_cpa)
            fatal("--cpa cannot be combined with --sample");
        if (all_stats)
            fatal("--all-stats applies to full simulations only");
        if (!perf_json.empty())
            fatal("--perf-json applies to full simulations only");
        if (!mem_json.empty())
            fatal("--mem-json applies to full simulations only");
        if (!bpred_json.empty())
            fatal("--bpred-json applies to full simulations only");
        if (!multi_json.empty())
            fatal("--multi-json applies to full simulations only");
        if (!cpi_json.empty() || !cpi_html.empty())
            fatal("--cpi-json/--cpi-html apply to full simulations "
                  "only (use reno-sample --cpi-json for sampled "
                  "stacks)");
        sample::SampleOptions sample_opts;
        sample_opts.plan = plan;
        sample_opts.plan.intervals = sample_intervals;
        sample_opts.campaign = opts;
        const sample::SampledCampaign sampled =
            sample::runSampledCampaign(workloads, configs,
                                       sample_opts);
        const std::string rendered =
            sample::renderSampled(sampled, format);
        std::fwrite(rendered.data(), 1, rendered.size(), stdout);
        return 0;
    }

    sweep::Campaign campaign;
    for (const Workload *w : workloads) {
        for (const NamedConfig &cfg : configs)
            campaign.add(*w, cfg, "", want_cpa);
    }

    const auto t0 = std::chrono::steady_clock::now();
    const sweep::CampaignResults results = campaign.run(opts);
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    const std::string rendered =
        sweep::renderResults(results, format, all_stats);
    std::fwrite(rendered.data(), 1, rendered.size(), stdout);

    if (!perf_json.empty()) {
        // Trend artifact for the CI perf-smoke job: how long the
        // campaign took and what it simulated. Aggregate IPC is over
        // every job result (cache hits included, so IPC is stable
        // even when wall_seconds measures a warm rerun).
        std::uint64_t total_cycles = 0, total_retired = 0;
        for (std::size_t i = 0; i < results.size(); ++i) {
            total_cycles += results.at(i).sim.cycles;
            total_retired += results.at(i).sim.retired;
        }
        std::FILE *f = std::fopen(perf_json.c_str(), "w");
        if (!f)
            fatal("cannot write '%s'", perf_json.c_str());
        std::fprintf(
            f,
            "{\n"
            "  \"jobs\": %zu,\n"
            "  \"simulated\": %zu,\n"
            "  \"wall_seconds\": %.3f,\n"
            "  \"total_cycles\": %llu,\n"
            "  \"total_retired\": %llu,\n"
            "  \"ipc\": %.4f\n"
            "}\n",
            results.stats().jobs, results.stats().simulated,
            wall_seconds,
            static_cast<unsigned long long>(total_cycles),
            static_cast<unsigned long long>(total_retired),
            total_cycles ? double(total_retired) / double(total_cycles)
                         : 0.0);
        std::fclose(f);
    }

    if (!mem_json.empty()) {
        // Per-cache-level aggregate over every job: the CI artifact
        // tracking memory-system behavior across the sweep.
        std::uint64_t hits[NumMemStatLevels] = {};
        std::uint64_t misses[NumMemStatLevels] = {};
        std::uint64_t merges[NumMemStatLevels] = {};
        std::uint64_t wbs[NumMemStatLevels] = {};
        std::uint64_t pf_issued[NumMemStatLevels] = {};
        std::uint64_t pf_useful[NumMemStatLevels] = {};
        std::uint64_t coh_inv = 0, coh_itv = 0, coh_upg = 0,
                      coh_wb = 0;
        for (std::size_t i = 0; i < results.size(); ++i) {
            const SimResult &r = results.at(i).sim;
            coh_inv += r.cohInvalidations;
            coh_itv += r.cohInterventions;
            coh_upg += r.cohUpgradeMisses;
            coh_wb += r.cohWritebacks;
            const std::uint64_t miss_by_level[NumMemStatLevels] = {
                r.icacheMisses, r.dcacheMisses, r.l2Misses,
                r.l3Misses};
            for (unsigned s = 0; s < NumMemStatLevels; ++s) {
                hits[s] += r.memHits[s];
                misses[s] += miss_by_level[s];
                merges[s] += r.memMshrMerges[s];
                wbs[s] += r.memWritebacks[s];
                pf_issued[s] += r.memPrefetchIssued[s];
                pf_useful[s] += r.memPrefetchUseful[s];
            }
        }
        std::FILE *f = std::fopen(mem_json.c_str(), "w");
        if (!f)
            fatal("cannot write '%s'", mem_json.c_str());
        std::fprintf(f, "{\n  \"jobs\": %zu,\n  \"levels\": [\n",
                     results.size());
        for (unsigned s = 0; s < NumMemStatLevels; ++s) {
            const std::uint64_t accesses = hits[s] + misses[s];
            std::fprintf(
                f,
                "    {\"level\": \"%s\", \"hits\": %llu, "
                "\"misses\": %llu, \"miss_rate\": %.6f, "
                "\"mshr_merges\": %llu, \"writebacks\": %llu, "
                "\"prefetch_issued\": %llu, "
                "\"prefetch_useful\": %llu}%s\n",
                MemStatLevelNames[s],
                static_cast<unsigned long long>(hits[s]),
                static_cast<unsigned long long>(misses[s]),
                accesses ? double(misses[s]) / double(accesses) : 0.0,
                static_cast<unsigned long long>(merges[s]),
                static_cast<unsigned long long>(wbs[s]),
                static_cast<unsigned long long>(pf_issued[s]),
                static_cast<unsigned long long>(pf_useful[s]),
                s + 1 < NumMemStatLevels ? "," : "");
        }
        std::fprintf(
            f,
            "  ],\n"
            "  \"coherence\": {\"invalidations\": %llu, "
            "\"interventions\": %llu, \"upgrade_misses\": %llu, "
            "\"writebacks\": %llu}\n"
            "}\n",
            static_cast<unsigned long long>(coh_inv),
            static_cast<unsigned long long>(coh_itv),
            static_cast<unsigned long long>(coh_upg),
            static_cast<unsigned long long>(coh_wb));
        std::fclose(f);
    }

    if (!bpred_json.empty()) {
        // Per-job front-end accuracy: the CI artifact tracking
        // branch-prediction behavior per workload and per predictor
        // variant, plus a campaign-wide aggregate.
        std::FILE *f = std::fopen(bpred_json.c_str(), "w");
        if (!f)
            fatal("cannot write '%s'", bpred_json.c_str());
        std::uint64_t agg_retired = 0, agg_lookups = 0,
                      agg_mispredicts = 0;
        std::fprintf(f, "{\n  \"jobs\": [\n");
        for (std::size_t i = 0; i < results.size(); ++i) {
            const sweep::Job &job = results.job(i);
            const SimResult &r = results.at(i).sim;
            agg_retired += r.retired;
            agg_lookups += r.bpLookups;
            agg_mispredicts += r.bpMispredicts;
            std::fprintf(
                f,
                "    {\"workload\": \"%s\", \"config\": \"%s\", "
                "\"retired\": %llu, \"lookups\": %llu, "
                "\"mispredicts\": %llu, \"dir\": %llu, "
                "\"target\": %llu, \"ras\": %llu, "
                "\"ras_overflows\": %llu, \"mpki\": %.4f, "
                "\"accuracy\": %.6f, \"tage_provider\": %llu, "
                "\"tage_alt\": %llu, "
                "\"perceptron_confident\": %llu}%s\n",
                job.workload->name.c_str(),
                job.config.name.c_str(),
                static_cast<unsigned long long>(r.retired),
                static_cast<unsigned long long>(r.bpLookups),
                static_cast<unsigned long long>(r.bpMispredicts),
                static_cast<unsigned long long>(r.bpDirMispredicts),
                static_cast<unsigned long long>(
                    r.bpTargetMispredicts),
                static_cast<unsigned long long>(r.bpRasMispredicts),
                static_cast<unsigned long long>(r.bpRasOverflows),
                r.retired ? 1000.0 * double(r.bpMispredicts) /
                                double(r.retired)
                          : 0.0,
                r.bpLookups ? 1.0 - double(r.bpMispredicts) /
                                        double(r.bpLookups)
                            : 0.0,
                static_cast<unsigned long long>(r.bpTageProviderHits),
                static_cast<unsigned long long>(r.bpTageAltHits),
                static_cast<unsigned long long>(
                    r.bpPerceptronConfident),
                i + 1 < results.size() ? "," : "");
        }
        std::fprintf(
            f,
            "  ],\n"
            "  \"aggregate\": {\"retired\": %llu, \"lookups\": %llu, "
            "\"mispredicts\": %llu, \"mpki\": %.4f, "
            "\"accuracy\": %.6f}\n"
            "}\n",
            static_cast<unsigned long long>(agg_retired),
            static_cast<unsigned long long>(agg_lookups),
            static_cast<unsigned long long>(agg_mispredicts),
            agg_retired ? 1000.0 * double(agg_mispredicts) /
                              double(agg_retired)
                        : 0.0,
            agg_lookups ? 1.0 - double(agg_mispredicts) /
                                    double(agg_lookups)
                        : 0.0);
        std::fclose(f);
    }

    if (!multi_json.empty()) {
        // Coherence traffic + per-core throughput per job: the CI
        // artifact tracking multi-core behavior (coherence.json).
        // Single-core jobs appear with zero coherence traffic, so
        // the artifact doubles as a no-false-traffic check.
        std::FILE *f = std::fopen(multi_json.c_str(), "w");
        if (!f)
            fatal("cannot write '%s'", multi_json.c_str());
        std::uint64_t agg_inv = 0, agg_itv = 0, agg_upg = 0,
                      agg_wb = 0;
        std::fprintf(f, "{\n  \"jobs\": [\n");
        for (std::size_t i = 0; i < results.size(); ++i) {
            const sweep::Job &job = results.job(i);
            const SimResult &r = results.at(i).sim;
            agg_inv += r.cohInvalidations;
            agg_itv += r.cohInterventions;
            agg_upg += r.cohUpgradeMisses;
            agg_wb += r.cohWritebacks;
            std::fprintf(
                f,
                "    {\"workload\": \"%s\", \"config\": \"%s\", "
                "\"cores\": %u, \"cycles\": %llu, "
                "\"invalidations\": %llu, \"interventions\": %llu, "
                "\"upgrade_misses\": %llu, \"writebacks\": %llu, "
                "\"per_core\": [",
                job.workload->name.c_str(), job.config.name.c_str(),
                job.config.params.sys.numCores,
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.cohInvalidations),
                static_cast<unsigned long long>(r.cohInterventions),
                static_cast<unsigned long long>(r.cohUpgradeMisses),
                static_cast<unsigned long long>(r.cohWritebacks));
            bool first = true;
            for (unsigned s = 0; s < NumCoreStatSlots; ++s) {
                if (r.coreCycles[s] == 0)
                    continue;
                std::fprintf(
                    f,
                    "%s{\"slot\": \"%s\", \"cycles\": %llu, "
                    "\"retired\": %llu, \"ipc\": %.4f}",
                    first ? "" : ", ", CoreStatSlotNames[s],
                    static_cast<unsigned long long>(r.coreCycles[s]),
                    static_cast<unsigned long long>(r.coreRetired[s]),
                    r.coreIpc(s));
                first = false;
            }
            std::fprintf(f, "]}%s\n",
                         i + 1 < results.size() ? "," : "");
        }
        std::fprintf(
            f,
            "  ],\n"
            "  \"aggregate\": {\"invalidations\": %llu, "
            "\"interventions\": %llu, \"upgrade_misses\": %llu, "
            "\"writebacks\": %llu}\n"
            "}\n",
            static_cast<unsigned long long>(agg_inv),
            static_cast<unsigned long long>(agg_itv),
            static_cast<unsigned long long>(agg_upg),
            static_cast<unsigned long long>(agg_wb));
        std::fclose(f);
    }

    if (!cpi_json.empty() || !cpi_html.empty()) {
        // Per-job CPI stacks + hotspots. Only jobs that actually
        // simulated under accounting carry a stack; a cache-hit job
        // (replayed from a profiling-agnostic cache entry) does not,
        // and the report says so rather than inventing zeros.
        std::vector<obs::CpiRow> rows;
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (!results.at(i).cpi.valid)
                continue;
            const sweep::Job &job = results.job(i);
            obs::CpiRow row;
            row.workload = job.workload->name;
            row.config = job.config.name;
            row.cores = job.config.params.sys.numCores;
            row.report = results.at(i).cpi;
            rows.push_back(std::move(row));
        }
        obs::MetricsRegistry::instance()
            .counter("cpi.jobs_with_stacks")
            .inc(rows.size());
        if (rows.size() < results.size())
            std::fprintf(stderr,
                         "[sweep] cpi: %zu of %zu jobs carry stacks "
                         "(cache hits replay without profiling)\n",
                         rows.size(), results.size());
        auto write_file = [](const std::string &path,
                             const std::string &content) {
            std::FILE *f = std::fopen(path.c_str(), "w");
            if (!f)
                fatal("cannot write '%s'", path.c_str());
            std::fwrite(content.data(), 1, content.size(), f);
            std::fclose(f);
        };
        if (!cpi_json.empty())
            write_file(cpi_json, obs::renderCpiJson(rows));
        if (!cpi_html.empty())
            write_file(cpi_html, obs::renderCpiHtml(rows));
    }
    return 0;
}
