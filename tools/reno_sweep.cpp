/**
 * @file
 * reno-sweep: the campaign-engine command-line driver. Runs an ad-hoc
 * cross-product sweep (suites/workloads x named configurations) or one
 * of the repo's named figure campaigns, on all host cores, with the
 * content-addressed result cache, and reports through the pluggable
 * table/JSON/CSV reporters.
 */
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "harness/experiment.hpp"
#include "sweep/campaign.hpp"
#include "sweep/reporter.hpp"
#include "workloads/workloads.hpp"

using namespace reno;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "campaign selection:\n"
        "  --suite spec|media|all   workloads to sweep (default all)\n"
        "  --workload NAME          one workload (repeatable)\n"
        "  --filter SUBSTR          keep matching workload names\n"
        "  --config NAME            preset (repeatable; default BASE,"
        " RENO)\n"
        "  --width 4|6              machine width (default 4)\n"
        "  --cpa                    critical-path analysis per job\n"
        "\n"
        "execution:\n"
        "  --jobs N                 worker threads (default: RENO_JOBS"
        " env, else all cores)\n"
        "  --cache-dir DIR          persistent result cache; a warm\n"
        "                           rerun performs zero simulations\n"
        "  --sweep-stats            execution summary on stderr\n"
        "\n"
        "output:\n"
        "  --report table|json|csv  reporter (default table)\n"
        "  --list                   list workloads/configs and exit\n");
    std::exit(0);
}

void
listEverything()
{
    std::printf("workloads:\n");
    for (const Workload &w : allWorkloads())
        std::printf("  %-10s (%s, seed %llu)\n", w.name.c_str(),
                    w.suite.c_str(),
                    static_cast<unsigned long long>(w.seed));
    std::printf("configs:\n");
    for (const std::string &name : knownConfigNames())
        std::printf("  %s\n", name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string suite = "all";
    std::string filter;
    std::vector<std::string> workload_names;
    std::vector<std::string> config_names;
    unsigned width = 4;
    bool want_cpa = false;
    sweep::ReportFormat format = sweep::ReportFormat::Table;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            const std::string prefix = std::string(flag) + "=";
            if (arg.rfind(prefix, 0) == 0)
                return arg.substr(prefix.size());
            if (i + 1 >= argc)
                fatal("%s expects a value", flag);
            return argv[++i];
        };
        auto matches = [&](const char *flag) {
            return arg == flag ||
                   arg.rfind(std::string(flag) + "=", 0) == 0;
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else if (arg == "--list") {
            listEverything();
            return 0;
        } else if (matches("--suite")) {
            suite = value("--suite");
        } else if (matches("--workload")) {
            workload_names.push_back(value("--workload"));
        } else if (matches("--filter")) {
            filter = value("--filter");
        } else if (matches("--config")) {
            config_names.push_back(value("--config"));
        } else if (matches("--width")) {
            const std::string v = value("--width");
            if (v == "4")
                width = 4;
            else if (v == "6")
                width = 6;
            else
                fatal("--width expects 4 or 6, got '%s'", v.c_str());
        } else if (arg == "--cpa") {
            want_cpa = true;
        } else if (matches("--report")) {
            const std::string v = value("--report");
            const auto f = sweep::reportFormatFromName(v);
            if (!f)
                fatal("--report expects table, json or csv, got '%s'",
                      v.c_str());
            format = *f;
        } else if (bool takes_value;
                   sweep::isCampaignFlag(arg, &takes_value)) {
            // Engine flags; parsed by parseCampaignArgs below.
            if (takes_value)
                ++i;
        } else {
            fatal("unknown argument '%s' (try --help)", arg.c_str());
        }
    }

    // Workload set.
    std::vector<const Workload *> workloads;
    if (!workload_names.empty()) {
        for (const std::string &name : workload_names)
            workloads.push_back(&workloadByName(name));
    } else if (suite == "all") {
        for (const Workload &w : allWorkloads())
            workloads.push_back(&w);
    } else {
        workloads = suiteWorkloads(suite);
    }
    if (!filter.empty()) {
        std::vector<const Workload *> kept;
        for (const Workload *w : workloads) {
            if (w->name.find(filter) != std::string::npos)
                kept.push_back(w);
        }
        workloads = kept;
    }
    if (workloads.empty())
        fatal("no workloads selected");

    // Configuration set.
    const CoreParams base =
        width == 6 ? CoreParams::sixWide() : CoreParams::fourWide();
    if (config_names.empty())
        config_names = {"BASE", "RENO"};
    std::vector<NamedConfig> configs;
    for (const std::string &name : config_names) {
        NamedConfig cfg;
        if (!configByName(name, base, &cfg)) {
            std::string known;
            for (const std::string &k : knownConfigNames())
                known += " " + k;
            fatal("unknown config '%s' (known:%s)", name.c_str(),
                  known.c_str());
        }
        configs.push_back(cfg);
    }

    sweep::Campaign campaign;
    for (const Workload *w : workloads) {
        for (const NamedConfig &cfg : configs)
            campaign.add(*w, cfg, "", want_cpa);
    }

    const sweep::CampaignOptions opts =
        sweep::parseCampaignArgs(argc, argv);
    const sweep::CampaignResults results = campaign.run(opts);
    const std::string rendered = sweep::renderResults(results, format);
    std::fwrite(rendered.data(), 1, rendered.size(), stdout);
    return 0;
}
