/**
 * @file
 * reno-sample: the sampled-simulation command-line driver. Estimates
 * whole-program IPC from checkpointed interval samples -- each
 * (workload, config, interval) is an independent campaign job, so
 * intervals parallelize across the worker pool and hit the
 * content-addressed result cache -- and, with --validate, runs the
 * full detailed simulations too and reports the per-workload IPC
 * error (the CI accuracy gate).
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "emu/emulator.hpp"
#include "harness/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/session.hpp"
#include "sample/sampler.hpp"
#include "sweep/campaign.hpp"
#include "sweep/reporter.hpp"
#include "workloads/workloads.hpp"

using namespace reno;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "workload/config selection (as in reno-sweep):\n"
        "  --suite spec|media|synth|mem|branch|multi|all\n"
        "                           workloads to sample (default all =\n"
        "                           the paper suites; synth/mem = long\n"
        "                           generated programs)\n"
        "  --workload NAME          one workload (repeatable)\n"
        "  --workloads GLOB         workloads matching a glob, from\n"
        "                           every suite (e.g. 'mem.chase.*')\n"
        "  --filter SUBSTR          keep matching workload names\n"
        "  --config NAME            preset (repeatable; default BASE,"
        " RENO)\n"
        "  --width 4|6              machine width (default 4)\n"
        "  --cores N                sample every config on an N-core\n"
        "                           System (1..%u; equivalent to a /Nc\n"
        "                           suffix; interval boundaries are\n"
        "                           aggregate retired instructions)\n"
        "  --emu interp|decoded     functional-emulator engine\n"
        "                           (default decoded superblocks;\n"
        "                           interp = per-step; bit-exact\n"
        "                           either way)\n"
        "\n"
        "sampling plan:\n"
        "  --sample N               measured intervals per program"
        " (default 10)\n"
        "  --warmup W               detailed warmup insts per interval"
        " (default 2000)\n"
        "  --measure M              measured insts per interval"
        " (default 5000)\n"
        "  --cold C                 exactly-measured cold stratum"
        " (default: total/10)\n"
        "\n"
        "validation:\n"
        "  --validate               also run full simulations; report\n"
        "                           per-workload sampled-vs-full IPC"
        " error\n"
        "  --max-error PCT          exit 1 if any |error| exceeds PCT\n"
        "\n"
        "execution:\n"
        "  --jobs N                 worker threads (default: RENO_JOBS"
        " env, else all cores)\n"
        "  --cache-dir DIR          persistent result cache; interval\n"
        "                           checkpoints persist under"
        " DIR/ckpt\n"
        "  --sweep-stats            execution summary on stderr\n"
        "\n"
        "output:\n"
        "  --report table|json|csv  reporter (default table)\n"
        "  --perf-json FILE         write wall-clock JSON with the\n"
        "                           per-phase breakdown (fast-forward\n"
        "                           vs warmup vs detailed)\n"
        "  --cpi-json FILE          write extrapolated whole-program\n"
        "                           CPI stacks (requires --cpi-stack;\n"
        "                           the same stratified estimator as\n"
        "                           the IPC estimate)\n"
        "\n"
        "observability (off by default; results are byte-identical\n"
        "either way):\n"
        "  --trace-out FILE         record a Chrome trace-event /\n"
        "                           Perfetto JSON of the run\n"
        "  --trace-sample N         + sample pipeline counters every N\n"
        "                           simulated cycles\n"
        "  --metrics-json FILE      write engine metrics JSON\n"
        "  --progress[=FILE]        stream NDJSON progress heartbeats\n"
        "                           (default sink: stderr)\n"
        "  --cpi-stack              per-cycle CPI-stack accounting on\n"
        "                           every measured window\n"
        "  --list                   list workloads/configs and exit\n"
        "  --list-configs           list configuration presets and"
        " exit\n"
        "  --list-suites            list workload suites and exit\n",
        argv0, SysParams::MaxCores);
    std::exit(0);
}

void
listEverything()
{
    std::printf("workloads:\n");
    for (const Workload &w : allWorkloads())
        std::printf("  %-11s (%s, seed %llu)\n", w.name.c_str(),
                    w.suite.c_str(),
                    static_cast<unsigned long long>(w.seed));
    for (const Workload &w : synthWorkloads())
        std::printf("  %-11s (%s, seed %llu)\n", w.name.c_str(),
                    w.suite.c_str(),
                    static_cast<unsigned long long>(w.seed));
    std::fputs(renderConfigList().c_str(), stdout);
}

std::uint64_t
parseCount(const char *flag, const std::string &v)
{
    char *end = nullptr;
    const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0' || n == 0)
        fatal("%s expects a positive integer, got '%s'", flag,
              v.c_str());
    return n;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string suite = "all";
    std::string filter;
    std::string workloads_glob;
    std::vector<std::string> workload_names;
    std::vector<std::string> config_names;
    unsigned width = 4;
    unsigned cores = 1;
    bool validate = false;
    double max_error = 0.0;
    sample::SamplePlan plan;
    sweep::ReportFormat format = sweep::ReportFormat::Table;
    std::string perf_json;
    std::string cpi_json;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            const std::string prefix = std::string(flag) + "=";
            if (arg.rfind(prefix, 0) == 0)
                return arg.substr(prefix.size());
            if (i + 1 >= argc)
                fatal("%s expects a value", flag);
            return argv[++i];
        };
        auto matches = [&](const char *flag) {
            return arg == flag ||
                   arg.rfind(std::string(flag) + "=", 0) == 0;
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else if (arg == "--list") {
            listEverything();
            return 0;
        } else if (arg == "--list-configs") {
            std::fputs(renderConfigList().c_str(), stdout);
            return 0;
        } else if (arg == "--list-suites") {
            std::fputs(renderSuiteList().c_str(), stdout);
            return 0;
        } else if (matches("--suite")) {
            suite = value("--suite");
        } else if (matches("--workload")) {
            workload_names.push_back(value("--workload"));
        } else if (matches("--workloads")) {
            workloads_glob = value("--workloads");
            if (workloads_glob.empty())
                fatal("--workloads expects a glob pattern");
        } else if (matches("--filter")) {
            filter = value("--filter");
        } else if (matches("--config")) {
            config_names.push_back(value("--config"));
        } else if (matches("--width")) {
            const std::string v = value("--width");
            if (v == "4")
                width = 4;
            else if (v == "6")
                width = 6;
            else
                fatal("--width expects 4 or 6, got '%s'", v.c_str());
        } else if (matches("--emu")) {
            const std::string v = value("--emu");
            if (v == "interp")
                setDefaultDecodedExec(false);
            else if (v == "decoded")
                setDefaultDecodedExec(true);
            else
                fatal("--emu expects interp or decoded, got '%s'",
                      v.c_str());
        } else if (matches("--cores")) {
            const std::string v = value("--cores");
            char *end = nullptr;
            const unsigned long n = std::strtoul(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0' || n == 0 ||
                n > SysParams::MaxCores)
                fatal("--cores expects 1..%u, got '%s'",
                      SysParams::MaxCores, v.c_str());
            cores = static_cast<unsigned>(n);
        } else if (matches("--sample")) {
            plan.intervals = parseCount("--sample", value("--sample"));
        } else if (matches("--warmup")) {
            const std::string v = value("--warmup");
            char *end = nullptr;
            plan.warmupInsts = std::strtoull(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0')
                fatal("--warmup expects an integer, got '%s'",
                      v.c_str());
        } else if (matches("--measure")) {
            plan.measureInsts =
                parseCount("--measure", value("--measure"));
        } else if (matches("--cold")) {
            plan.coldInsts = parseCount("--cold", value("--cold"));
        } else if (arg == "--validate") {
            validate = true;
        } else if (matches("--max-error")) {
            const std::string v = value("--max-error");
            char *end = nullptr;
            max_error = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0' || max_error <= 0.0)
                fatal("--max-error expects a positive number, got "
                      "'%s'",
                      v.c_str());
        } else if (matches("--report")) {
            const std::string v = value("--report");
            const auto f = sweep::reportFormatFromName(v);
            if (!f)
                fatal("--report expects table, json or csv, got '%s'",
                      v.c_str());
            format = *f;
        } else if (matches("--perf-json")) {
            perf_json = value("--perf-json");
            if (perf_json.empty())
                fatal("--perf-json expects a file path");
        } else if (matches("--cpi-json")) {
            cpi_json = value("--cpi-json");
            if (cpi_json.empty())
                fatal("--cpi-json expects a file path");
        } else if (bool takes_value;
                   sweep::isCampaignFlag(arg, &takes_value)) {
            // Engine flags; parsed by parseCampaignArgs below.
            if (takes_value)
                ++i;
        } else if (bool takes_value;
                   obs::isObsFlag(arg, &takes_value)) {
            // Observability flags; parsed by parseObsArgs below.
            if (takes_value)
                ++i;
        } else {
            fatal("unknown argument '%s' (try --help)", arg.c_str());
        }
    }
    if (max_error > 0.0 && !validate)
        fatal("--max-error requires --validate");

    // Workload set.
    std::vector<const Workload *> workloads;
    if (!workloads_glob.empty()) {
        if (!workload_names.empty())
            fatal("--workloads and --workload are exclusive");
        workloads = workloadsMatching(workloads_glob, suite);
    } else if (!workload_names.empty()) {
        for (const std::string &name : workload_names)
            workloads.push_back(&workloadByName(name));
    } else if (suite == "all") {
        for (const Workload &w : allWorkloads())
            workloads.push_back(&w);
    } else {
        workloads = suiteWorkloads(suite);
    }
    if (!filter.empty()) {
        std::vector<const Workload *> kept;
        for (const Workload *w : workloads) {
            if (w->name.find(filter) != std::string::npos)
                kept.push_back(w);
        }
        workloads = kept;
    }
    if (workloads.empty())
        fatal("no workloads selected");

    // Configuration set.
    const CoreParams base =
        width == 6 ? CoreParams::sixWide() : CoreParams::fourWide();
    if (config_names.empty())
        config_names = {"BASE", "RENO"};
    std::vector<NamedConfig> configs;
    for (const std::string &name : config_names) {
        NamedConfig cfg;
        if (!configByName(name, base, &cfg)) {
            std::string known;
            for (const std::string &k : knownConfigNames())
                known += " " + k;
            fatal("unknown config '%s' (known:%s)", name.c_str(),
                  known.c_str());
        }
        configs.push_back(cfg);
    }
    if (cores > 1) {
        // Equivalent to a /Nc suffix on every selected config; the
        // suffix keeps multi-core rows distinguishable in reports.
        for (NamedConfig &cfg : configs) {
            if (cfg.params.sys.numCores > 1)
                fatal("--cores conflicts with config '%s' (already "
                      "runs %u cores)",
                      cfg.name.c_str(), cfg.params.sys.numCores);
            cfg.params.sys.numCores = cores;
            cfg.name += strprintf("/%uc", cores);
        }
    }

    sample::SampleOptions options;
    options.plan = plan;
    options.campaign = sweep::parseCampaignArgs(argc, argv);
    const obs::ObsOptions obs_opts = obs::parseObsArgs(argc, argv);
    const obs::Session obs_session(obs_opts);
    if (!cpi_json.empty() && !obs_opts.cpiStack)
        fatal("--cpi-json requires --cpi-stack");
    if (!cpi_json.empty() && validate)
        fatal("--cpi-json cannot be combined with --validate");
    if (!perf_json.empty())
        obs::PhaseStats::instance().enable();

    const auto t0 = std::chrono::steady_clock::now();
    auto write_perf_json = [&] {
        if (perf_json.empty())
            return;
        const double wall_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        std::FILE *f = std::fopen(perf_json.c_str(), "w");
        if (!f)
            fatal("cannot write '%s'", perf_json.c_str());
        // Phases are disjoint leaves (fast-forward vs warmup vs
        // detailed ...), so their seconds sum to ~the simulation
        // share of wall_seconds.
        const auto phases = obs::PhaseStats::instance().snapshot();
        std::fprintf(f,
                     "{\n  \"wall_seconds\": %.3f,\n"
                     "  \"phases\": [\n",
                     wall_seconds);
        for (std::size_t i = 0; i < phases.size(); ++i) {
            const auto &[name, totals] = phases[i];
            std::fprintf(
                f,
                "    {\"phase\": \"%s\", \"seconds\": %.3f, "
                "\"insts\": %llu, \"minstr_per_s\": %.3f, "
                "\"count\": %llu}%s\n",
                name.c_str(),
                static_cast<double>(totals.micros) / 1e6,
                static_cast<unsigned long long>(totals.insts),
                totals.instsPerSec() / 1e6,
                static_cast<unsigned long long>(totals.count),
                i + 1 < phases.size() ? "," : "");
        }
        // Decoded-block cache totals (flushed by every Emulator on
        // destruction): how much of the functional work ran through
        // the superblock engine, and how well its cache held up.
        auto &reg = obs::MetricsRegistry::instance();
        const auto c = [&](const char *name) {
            return static_cast<unsigned long long>(
                reg.counter(name).value());
        };
        std::fprintf(
            f,
            "  ],\n"
            "  \"emu\": {\n"
            "    \"mode\": \"%s\",\n"
            "    \"insts_decoded\": %llu,\n"
            "    \"insts_interpreted\": %llu,\n"
            "    \"block_cache\": {\"lookups\": %llu, \"hits\": %llu, "
            "\"blocks_decoded\": %llu, \"superblocks_chained\": %llu, "
            "\"invalidation_events\": %llu, "
            "\"invalidated_blocks\": %llu}\n"
            "  }\n}\n",
            defaultDecodedExec() ? "decoded" : "interp",
            c("emu.insts.decoded"), c("emu.insts.interpreted"),
            c("emu.block_cache.lookups"), c("emu.block_cache.hits"),
            c("emu.block_cache.blocks_decoded"),
            c("emu.block_cache.superblocks_chained"),
            c("emu.block_cache.invalidation_events"),
            c("emu.block_cache.invalidated_blocks"));
        std::fclose(f);
    };

    if (validate) {
        const sample::ValidationReport report =
            sample::validateSampling(workloads, configs, options);
        const std::string rendered =
            sample::renderValidation(report, format);
        std::fwrite(rendered.data(), 1, rendered.size(), stdout);
        std::fprintf(stderr,
                     "[sample] max |IPC error| %.2f%%; full %.2fs "
                     "(%zu sims), sampled %.2fs (%zu sims), "
                     "speedup %.1fx\n",
                     report.maxAbsErrorPct, report.fullSeconds,
                     report.fullStats.simulated,
                     report.sampledSeconds,
                     report.sampledStats.simulated,
                     report.speedup());
        write_perf_json();
        if (max_error > 0.0 && report.maxAbsErrorPct > max_error) {
            std::fprintf(stderr,
                         "[sample] FAIL: max |IPC error| %.2f%% "
                         "exceeds the --max-error bound %.2f%%\n",
                         report.maxAbsErrorPct, max_error);
            return 1;
        }
        return 0;
    }

    const sample::SampledCampaign sampled =
        sample::runSampledCampaign(workloads, configs, options);
    const std::string rendered = sample::renderSampled(sampled, format);
    std::fwrite(rendered.data(), 1, rendered.size(), stdout);
    write_perf_json();

    if (!cpi_json.empty()) {
        // Extrapolated stacks; a run loses its stack when any of its
        // measured windows replayed from a cache entry (the cache is
        // profiling-agnostic), and such runs are skipped.
        std::vector<obs::SampledCpiRow> rows;
        for (const sample::SampledRun &run : sampled.runs) {
            if (!run.est.hasCpi)
                continue;
            obs::SampledCpiRow row;
            row.workload = run.workload->name;
            row.config = run.config;
            row.cores = run.numCores;
            row.est = run.est.cpiEst;
            rows.push_back(std::move(row));
        }
        if (rows.size() < sampled.runs.size())
            std::fprintf(stderr,
                         "[sample] cpi: %zu of %zu runs carry stacks "
                         "(cache hits replay without profiling)\n",
                         rows.size(), sampled.runs.size());
        const std::string doc = obs::renderSampledCpiJson(rows);
        std::FILE *f = std::fopen(cpi_json.c_str(), "w");
        if (!f)
            fatal("cannot write '%s'", cpi_json.c_str());
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fclose(f);
    }
    return 0;
}
