/**
 * @file
 * Renaming trace: steps the instruction sequences from the paper's
 * Figures 1, 2, 4, 3 and 5 through the RENO renamer and prints the
 * map-table transitions, reproducing the tables in the paper.
 *
 * Run: ./build/examples/renaming_trace
 */
#include <cstdio>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "isa/regs.hpp"
#include "reno/renamer.hpp"

using namespace reno;

namespace
{

/** Print a subset of the map table as "r2->[p4:0]" pairs. */
std::string
mapString(const RenoRenamer &ren, const std::vector<unsigned> &regs)
{
    std::string out;
    for (const unsigned r : regs) {
        const MapEntry e =
            ren.mapTable().get(static_cast<LogReg>(r));
        if (!out.empty())
            out += ", ";
        out += strprintf("r%u->[p%u:%d]", r,
                         static_cast<unsigned>(e.preg),
                         static_cast<int>(e.disp));
    }
    return out;
}

void
trace(RenoRenamer &ren, const std::vector<unsigned> &shown,
      const Instruction &inst, std::uint64_t result)
{
    ren.beginGroup();
    const RenameOut out = ren.rename(RenameIn{inst, result});
    const char *kind = "";
    switch (out.elim) {
      case ElimKind::None: kind = "executed"; break;
      case ElimKind::Move: kind = "ELIMINATED (move)"; break;
      case ElimKind::Fold: kind = "FOLDED (constant folding)"; break;
      case ElimKind::Cse:  kind = "ELIMINATED (CSE)"; break;
      case ElimKind::Ra:   kind = "BYPASSED (memory bypassing)"; break;
    }
    std::printf("  %-22s %-28s map: %s\n",
                disassemble(inst).c_str(), kind,
                mapString(ren, shown).c_str());
}

void
header(const char *title)
{
    std::printf("\n%s\n", title);
    for (size_t i = 0; i < std::string(title).size(); ++i)
        std::printf("-");
    std::printf("\n");
}

} // namespace

int
main()
{
    std::uint64_t vals[NumLogRegs] = {};
    for (unsigned r = 0; r < NumLogRegs; ++r)
        vals[r] = 100 * r;

    // ---- Figure 1: dynamic move elimination --------------------------
    {
        header("Figure 1: dynamic move elimination (RENO_ME)");
        RenoRenamer ren(RenoConfig::meOnly(), 64);
        ren.initialize(vals);
        const std::vector<unsigned> shown = {1, 2, 3, 4};
        std::printf("  initial:%54s%s\n", "",
                    mapString(ren, shown).c_str());
        trace(ren, shown, Instruction::rr(Opcode::ADD, 3, 1, 2), 300);
        trace(ren, shown, Instruction::move(2, 3), 300);
        trace(ren, shown, Instruction::mem(Opcode::LDQ, 4, 2, 8), 7);
    }

    // ---- Figure 2: dynamic constant folding --------------------------
    {
        header("Figure 2: dynamic constant folding (RENO_CF)");
        RenoRenamer ren(RenoConfig::meCf(), 64);
        ren.initialize(vals);
        const std::vector<unsigned> shown = {1, 2, 3, 4};
        trace(ren, shown, Instruction::rr(Opcode::ADD, 3, 1, 2), 300);
        trace(ren, shown, Instruction::ri(Opcode::ADDI, 2, 3, 4), 304);
        trace(ren, shown, Instruction::mem(Opcode::LDQ, 4, 2, 8), 9);
    }

    // ---- Figure 4: folding chains -------------------------------------
    {
        header("Figure 4: folding a chain of additions");
        RenoRenamer ren(RenoConfig::meCf(), 64);
        ren.initialize(vals);
        const std::vector<unsigned> shown = {1, 2, 4, 8};
        trace(ren, shown, Instruction::ri(Opcode::ADDI, 2, 1, 5), 105);
        trace(ren, shown, Instruction::ri(Opcode::ADDI, 4, 2, 6), 111);
        trace(ren, shown, Instruction::rr(Opcode::OR, 8, 4, 1),
              111 | 100);
    }

    // ---- Figure 3 top: common subexpression elimination ----------------
    {
        header("Figure 3 (top): redundant load elimination (RENO_CSE)");
        RenoRenamer ren(RenoConfig::fullIt(), 64);
        ren.initialize(vals);
        const std::vector<unsigned> shown = {1, 3, 4};
        trace(ren, shown, Instruction::mem(Opcode::LDQ, 3, 1, 8), 42);
        trace(ren, shown, Instruction::mem(Opcode::LDQ, 4, 1, 8), 42);
        trace(ren, shown, Instruction::rr(Opcode::ADD, 1, 3, 3), 84);
        trace(ren, shown, Instruction::mem(Opcode::LDQ, 3, 1, 8), 55);
    }

    // ---- Figure 3 bottom: speculative memory bypassing -----------------
    {
        header("Figure 3 (bottom): speculative memory bypassing "
               "(RENO_RA)");
        RenoRenamer ren(RenoConfig::integrationOnly(), 64);
        ren.initialize(vals);
        const std::vector<unsigned> shown = {RegSp, 1, 2};
        trace(ren, shown,
              Instruction::mem(Opcode::STQ, 2, RegSp, 8), 0);
        trace(ren, shown,
              Instruction::ri(Opcode::ADDI, RegSp, RegSp, -16),
              100 * RegSp - 16);
        trace(ren, shown, Instruction::rr(Opcode::ADD, 2, 1, 1), 200);
        trace(ren, shown,
              Instruction::ri(Opcode::ADDI, RegSp, RegSp, 16),
              100 * RegSp);
        trace(ren, shown,
              Instruction::mem(Opcode::LDQ, 2, RegSp, 8), 200);
    }

    // ---- Figure 5: CF and CSE together ----------------------------------
    {
        header("Figure 5: constant folding and CSE together");
        RenoRenamer ren(RenoConfig::full(), 64);
        ren.initialize(vals);
        const std::vector<unsigned> shown = {1, 3, 4};
        trace(ren, shown, Instruction::ri(Opcode::ADDI, 1, 1, 4), 104);
        trace(ren, shown, Instruction::mem(Opcode::LDQ, 3, 1, 8), 77);
        trace(ren, shown, Instruction::mem(Opcode::LDQ, 4, 1, 8), 77);
    }

    std::printf("\n");
    return 0;
}
