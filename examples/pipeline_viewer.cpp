/**
 * @file
 * Pipeline viewer: run a workload (or a built-in demo snippet) on the
 * timing core and print a cycle-by-cycle pipeline diagram of a window
 * of retired instructions, annotated with RENO's rename decisions.
 *
 * This makes the paper's core mechanism directly visible: collapsed
 * instructions fetch and rename but never issue; their consumers are
 * short-circuited to the shared physical register, so dependent work
 * issues earlier than on the baseline.
 *
 * Usage:
 *   pipeline_viewer                        # demo snippet, full RENO
 *   pipeline_viewer --config base          # demo without RENO
 *   pipeline_viewer --workload gzip        # window of a real workload
 *   pipeline_viewer --skip 2000 --n 48     # choose the window
 */
#include <cstdio>
#include <string>

#include "asm/assembler.hpp"
#include "common/log.hpp"
#include "harness/experiment.hpp"
#include "trace/pipetrace.hpp"
#include "uarch/core.hpp"

using namespace reno;

namespace
{

/**
 * Demo: a pointer-bump loop the paper's introduction motivates.
 * Each iteration advances a pointer with a register-immediate
 * addition (folded by RENO_CF), loads through it, accumulates, and
 * saves/restores a value through the stack (bypassed by RENO_RA).
 */
const char *const demo_source = R"(
        .data
buf:    .space 512
        .text
_start:
        la   s0, buf
        li   s1, 32           # elements
        li   t0, 0
fill:
        slli t1, t0, 3
        add  t2, s0, t1
        stq  t0, 0(t2)
        addi t0, t0, 1
        slt  t3, t0, s1
        bne  t3, fill

        mov  t0, s0           # p = buf
        li   s2, 0            # sum
        li   t4, 0            # i
loop:
        ldq  t1, 0(t0)        # *p
        addi t0, t0, 8        # p++   (RENO_CF folds this)
        mov  t2, t1           #        (RENO_ME collapses this)
        subi sp, sp, 8        #        (RENO_CF folds this)
        stq  s2, 0(sp)        # spill
        add  t6, t1, t2
        mul  t7, t6, t2
        add  t6, t6, t7
        ldq  t3, 0(sp)        # reload (RENO_RA bypasses this)
        addi sp, sp, 8        #        (RENO_CF folds this)
        add  s2, t3, t6
        addi t4, t4, 1        #        (RENO_CF folds this)
        slt  t5, t4, s1
        bne  t5, loop

        li   v0, 1
        mov  a0, s2
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

RenoConfig
configByName(const std::string &name)
{
    if (name == "base")
        return RenoConfig::baseline();
    if (name == "me")
        return RenoConfig::meOnly();
    if (name == "mecf")
        return RenoConfig::meCf();
    if (name == "reno")
        return RenoConfig::full();
    fatal("unknown config '%s' (base|me|mecf|reno)", name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string config = "reno";
    std::string workload_name;
    std::uint64_t skip = 0;
    std::uint64_t count = 40;
    unsigned width = 72;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--config")
            config = next();
        else if (arg == "--workload")
            workload_name = next();
        else if (arg == "--skip")
            skip = std::stoull(next());
        else if (arg == "--n")
            count = std::stoull(next());
        else if (arg == "--width")
            width = static_cast<unsigned>(std::stoul(next()));
        else
            fatal("unknown option %s", arg.c_str());
    }

    Workload demo{"demo", "example", demo_source};
    const Workload &w = workload_name.empty()
        ? demo : workloadByName(workload_name);

    CoreParams params;
    params.reno = configByName(config);
    if (workload_name.empty() && skip == 0)
        skip = 220;  // land the demo window inside the main loop

    PipeTracer::Options topts;
    topts.skipFirst = skip;
    topts.maxRecords = count;
    PipeTracer tracer(topts);

    const Program prog = assemble(w.source);
    Emulator::Options eopts;
    eopts.randSeed = w.seed;
    Emulator emu(prog, eopts);
    Core core(params, emu);
    core.setRetireListener(&tracer);
    const SimResult r = core.run();

    std::printf("%s on '%s' (config %s): %llu insts, %llu cycles, "
                "IPC %.3f, %.1f%% collapsed\n\n",
                w.name.c_str(), w.suite.c_str(), config.c_str(),
                static_cast<unsigned long long>(r.retired),
                static_cast<unsigned long long>(r.cycles), r.ipc(),
                r.elimFraction() * 100.0);
    std::fputs(renderPipeTrace(tracer.records(), width).c_str(),
               stdout);
    return 0;
}
