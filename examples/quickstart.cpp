/**
 * @file
 * Quickstart: assemble a small program, run it functionally, then run
 * it through the cycle-level core with and without RENO and compare.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cstdio>

#include "asm/assembler.hpp"
#include "emu/emulator.hpp"
#include "uarch/core.hpp"

namespace
{

// A loop whose body is full of RENO food: a register move, several
// register-immediate additions (address arithmetic and loop control),
// and stack spill/reload pairs around a helper call.
const char *const program = R"(
        .data
array:  .space 8192
        .text
# sum3(a0 = base) -> v0 = arr[0] + arr[8] + arr[16]
sum3:
        ldq  t0, 0(a0)
        ldq  t1, 8(a0)
        ldq  t2, 16(a0)
        add  v0, t0, t1
        add  v0, v0, t2
        ret
_start:
        la   s0, array
        # fill the array with random small values (they double as
        # pointer-chase offsets, so iterations are data dependent the
        # way linked-structure code is)
        li   t0, 0
fill:
        li   v0, 5
        syscall
        andi t1, v0, 1023
        slli t2, t0, 3
        add  t3, s0, t2
        stq  t1, 0(t3)
        addi t0, t0, 1
        slti t4, t0, 1024
        bne  t4, fill

        li   s1, 1000         # iterations
        li   s2, 0            # checksum
        mov  s3, s0           # chase pointer
        subi sp, sp, 16       # loop frame            (RENO_CF)
loop:
        stq  s3, 8(sp)        # spill the pointer
        add  s2, s2, s1       # off-chain bookkeeping
        ldq  t4, 8(sp)        # reload it             (RENO_RA)
        stq  ra, 0(sp)
        mov  a0, t4           # argument move         (RENO_ME)
        call sum3
        ldq  ra, 0(sp)        # reload                (RENO_RA)
        andi t5, v0, 1020     # next element index
        slli t5, t5, 3
        add  s3, s0, t5       # data-dependent walk
        add  s2, s2, v0
        subi s1, s1, 1
        bne  s1, loop
        addi sp, sp, 16
        li   v0, 1
        mov  a0, s2
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)";

void
report(const char *name, const reno::SimResult &r)
{
    std::printf("%-10s cycles=%-8llu IPC=%.3f eliminated=%.1f%% "
                "(ME %.1f%%, CF %.1f%%, CSE+RA %.1f%%)\n",
                name,
                static_cast<unsigned long long>(r.cycles), r.ipc(),
                r.elimFraction() * 100.0,
                r.elimFraction(reno::ElimKind::Move) * 100.0,
                r.elimFraction(reno::ElimKind::Fold) * 100.0,
                (r.elimFraction(reno::ElimKind::Cse) +
                 r.elimFraction(reno::ElimKind::Ra)) * 100.0);
}

} // namespace

int
main()
{
    using namespace reno;

    const Program prog = assemble(program);

    // 1. Functional run: the architectural reference.
    Emulator ref(prog);
    ref.run();
    std::printf("functional: %llu instructions, output \"%s\"\n",
                static_cast<unsigned long long>(ref.instCount()),
                ref.output().c_str());

    // 2. Cycle-level baseline (RENO disabled).
    Emulator emu_base(prog);
    Core base(CoreParams::fourWide(), emu_base);
    const SimResult r_base = base.run();
    report("baseline", r_base);

    // 3. Full RENO.
    Emulator emu_reno(prog);
    CoreParams params = CoreParams::fourWide();
    params.reno = RenoConfig::full();
    Core reno_core(params, emu_reno);
    const SimResult r_reno = reno_core.run();
    report("RENO", r_reno);

    if (emu_base.output() != ref.output() ||
        emu_reno.output() != ref.output()) {
        std::printf("ERROR: outputs diverged!\n");
        return 1;
    }
    std::printf("all outputs match; RENO speedup: %.1f%%\n",
                (double(r_base.cycles) / double(r_reno.cycles) - 1.0) *
                    100.0);
    return 0;
}
