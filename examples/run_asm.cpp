/**
 * @file
 * Assembly runner: assemble a .s file from disk, execute it on the
 * functional emulator, and (optionally) simulate it on the timing
 * core with a chosen RENO configuration.
 *
 * Usage:
 *   run_asm program.s                 # functional run only
 *   run_asm --sim program.s           # + timing simulation (full RENO)
 *   run_asm --sim --config base x.s   # + chosen configuration
 */
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "asm/assembler.hpp"
#include "common/log.hpp"
#include "emu/emulator.hpp"
#include "uarch/core.hpp"

using namespace reno;

int
main(int argc, char **argv)
{
    std::string path;
    std::string config = "reno";
    bool sim = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--sim") {
            sim = true;
        } else if (arg == "--config") {
            if (i + 1 >= argc)
                fatal("--config needs a value");
            config = argv[++i];
        } else {
            path = arg;
        }
    }
    if (path.empty())
        fatal("usage: run_asm [--sim] [--config <name>] program.s");

    std::ifstream in(path);
    if (!in)
        fatal("cannot open %s", path.c_str());
    std::stringstream ss;
    ss << in.rdbuf();

    Program prog;
    try {
        prog = assemble(ss.str());
    } catch (const AsmError &e) {
        fatal("%s: %s", path.c_str(), e.what());
    }
    std::printf("assembled %zu instructions, %zu data bytes\n",
                prog.text.size(), prog.data.size());

    Emulator emu(prog);
    if (!sim) {
        emu.run();
        std::printf("output: %s\n", emu.output().c_str());
        std::printf("retired %llu instructions, exit code %llu\n",
                    static_cast<unsigned long long>(emu.instCount()),
                    static_cast<unsigned long long>(emu.exitCode()));
        return static_cast<int>(emu.exitCode());
    }

    CoreParams params;
    if (config == "base")
        params.reno = RenoConfig::baseline();
    else if (config == "me")
        params.reno = RenoConfig::meOnly();
    else if (config == "mecf")
        params.reno = RenoConfig::meCf();
    else if (config == "reno")
        params.reno = RenoConfig::full();
    else
        fatal("unknown config '%s'", config.c_str());

    Core core(params, emu);
    const SimResult r = core.run();
    std::printf("output: %s\n", emu.output().c_str());
    std::printf("cycles=%llu IPC=%.3f eliminated=%.1f%% "
                "(ME %.1f%% CF %.1f%% CSE+RA %.1f%%)\n",
                static_cast<unsigned long long>(r.cycles), r.ipc(),
                r.elimFraction() * 100,
                r.elimFraction(ElimKind::Move) * 100,
                r.elimFraction(ElimKind::Fold) * 100,
                (r.elimFraction(ElimKind::Cse) +
                 r.elimFraction(ElimKind::Ra)) * 100);
    return static_cast<int>(emu.exitCode());
}
