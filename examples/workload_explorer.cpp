/**
 * @file
 * Workload explorer: run any registered workload (or a whole suite)
 * on a chosen machine configuration and print detailed statistics,
 * including functional-vs-timing state cross-checks and an optional
 * critical-path breakdown.
 *
 * Usage:
 *   workload_explorer [options] <workload|spec|media|all>
 * Options:
 *   --config base|me|mecf|reno|fullit|integ|loadsinteg   (default reno)
 *   --width 4|6              machine width        (default 4)
 *   --pregs N                physical registers   (default 160)
 *   --schedloop N            wakeup/select cycles (default 1)
 *   --critpath               print the critical-path breakdown
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "common/log.hpp"
#include "harness/experiment.hpp"

using namespace reno;

namespace
{

RenoConfig
configByName(const std::string &name)
{
    if (name == "base")
        return RenoConfig::baseline();
    if (name == "me")
        return RenoConfig::meOnly();
    if (name == "mecf")
        return RenoConfig::meCf();
    if (name == "reno")
        return RenoConfig::full();
    if (name == "fullit")
        return RenoConfig::fullIt();
    if (name == "integ")
        return RenoConfig::integrationOnly();
    if (name == "loadsinteg")
        return RenoConfig::loadsIntegrationOnly();
    fatal("unknown config '%s'", name.c_str());
}

void
runOne(const Workload &w, const CoreParams &params, bool critpath)
{
    // Functional reference.
    const RunOutput ref = runFunctional(w);

    CriticalPathAnalyzer cpa;
    const RunOutput out =
        runWorkload(w, params, critpath ? &cpa : nullptr);
    const SimResult &r = out.sim;

    const bool state_ok =
        out.output == ref.output && out.memDigest == ref.memDigest;

    std::printf("%-10s %-6s insts=%-8llu cycles=%-9llu IPC=%5.3f "
                "elim=%5.1f%% (ME %4.1f%% CF %4.1f%% CSE+RA %4.1f%%) "
                "bpmr=%4.1f%% dc-miss=%llu viol=%llu misint=%llu %s\n",
                w.name.c_str(), w.suite.c_str(),
                static_cast<unsigned long long>(r.retired),
                static_cast<unsigned long long>(r.cycles), r.ipc(),
                r.elimFraction() * 100.0,
                r.elimFraction(ElimKind::Move) * 100.0,
                r.elimFraction(ElimKind::Fold) * 100.0,
                (r.elimFraction(ElimKind::Cse) +
                 r.elimFraction(ElimKind::Ra)) * 100.0,
                r.bpLookups
                    ? 100.0 * double(r.bpMispredicts) / double(r.bpLookups)
                    : 0.0,
                static_cast<unsigned long long>(r.dcacheMisses),
                static_cast<unsigned long long>(r.violationSquashes),
                static_cast<unsigned long long>(r.misintegrationFlushes),
                state_ok ? "state-ok" : "STATE-MISMATCH");

    if (critpath) {
        const auto b = cpa.breakdown();
        std::printf("           critpath: fetch %.1f%% alu %.1f%% "
                    "load %.1f%% mem %.1f%% commit %.1f%%\n",
                    b[0] * 100, b[1] * 100, b[2] * 100, b[3] * 100,
                    b[4] * 100);
    }
    if (!state_ok)
        std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string target = "all";
    std::string config = "reno";
    unsigned width = 4;
    unsigned pregs = 160;
    unsigned schedloop = 1;
    bool critpath = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--config")
            config = next();
        else if (arg == "--width")
            width = static_cast<unsigned>(std::stoul(next()));
        else if (arg == "--pregs")
            pregs = static_cast<unsigned>(std::stoul(next()));
        else if (arg == "--schedloop")
            schedloop = static_cast<unsigned>(std::stoul(next()));
        else if (arg == "--critpath")
            critpath = true;
        else
            target = arg;
    }

    CoreParams params =
        width == 6 ? CoreParams::sixWide() : CoreParams::fourWide();
    params.numPregs = pregs;
    params.schedLoop = schedloop;
    params.reno = configByName(config);

    if (target == "all" || target == "spec" || target == "media") {
        for (const Workload &w : allWorkloads()) {
            if (target == "all" || w.suite == target)
                runOne(w, params, critpath);
        }
    } else {
        runOne(workloadByName(target), params, critpath);
    }
    return 0;
}
